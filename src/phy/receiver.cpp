#include "phy/receiver.h"

#include <cmath>
#include <stdexcept>

#include "common/crc32.h"
#include "obs/flight/flight.h"
#include "obs/obs.h"
#include "phy/convolutional.h"
#include "phy/interleaver.h"
#include "phy/modulation.h"
#include "phy/ofdm.h"
#include "phy/pilots.h"
#include "phy/preamble.h"
#include "phy/puncture.h"
#include "phy/scrambler.h"
#include "phy/sync.h"
#include "phy/transmitter.h"
#include "phy/viterbi.h"

namespace silence {
namespace {

constexpr int kServiceBits = 16;
constexpr double kMinChannelPower = 1e-9;

const ViterbiDecoder& shared_decoder() {
  static const ViterbiDecoder decoder;
  return decoder;
}

std::optional<SignalField> decode_signal(
    std::span<const Cx> signal_samples,
    const std::array<Cx, kFftSize>& channel, double noise_var) {
  const CxVec bins = time_to_bins(signal_samples);
  const CxVec points = equalize_data_points(bins, channel);

  const Mcs& bpsk = mcs_for_rate(6);
  std::vector<double> llrs;
  llrs.reserve(48);
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Cx h = channel[static_cast<std::size_t>(data_bins[idx])];
    const double h2 = std::max(std::norm(h), kMinChannelPower);
    demod_llrs(points[idx], Modulation::kBpsk, noise_var / h2, llrs);
  }
  const auto deint = deinterleave_symbol_llrs(llrs, bpsk);
  const Bits bits = shared_decoder().decode(deint);
  return parse_signal_bits(std::span(bits).first(24));
}

}  // namespace

CxVec equalize_data_points(std::span<const Cx> bins64,
                           const std::array<Cx, kFftSize>& channel) {
  CxVec points = extract_data_points(bins64);
  const auto data_bins = data_subcarrier_bins();
  for (int i = 0; i < kNumDataSubcarriers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Cx h = channel[static_cast<std::size_t>(data_bins[idx])];
    if (std::norm(h) < kMinChannelPower) {
      points[idx] = Cx{0.0, 0.0};
    } else {
      points[idx] /= h;
    }
  }
  return points;
}

FrontEndResult receiver_front_end(std::span<const Cx> raw_samples) {
  FrontEndResult fe;
  if (raw_samples.size() <
      static_cast<std::size_t>(kPreambleSamples + kSymbolSamples)) {
    return fe;
  }
  OBS_SPAN("phy.rx.frontend");
  OBS_COUNT("phy.rx.packets");
  fe.preamble_ok = true;

  // Carrier synchronization: coarse CFO from the STF periodicity, then a
  // fine pass on the (coarse-corrected) LTF. On an offset-free input the
  // estimates are noise-level and the correction is a no-op.
  CxVec corrected(raw_samples.begin(), raw_samples.end());
  {
    OBS_SPAN("phy.rx.sync");
    const double coarse =
        estimate_cfo_coarse(std::span(corrected).first(kStfSamples));
    correct_cfo(corrected, coarse);
    const double fine = estimate_cfo_fine(
        std::span(corrected).subspan(kStfSamples, kLtfSamples));
    correct_cfo(corrected, fine);
    fe.cfo_hz = coarse + fine;
    OBS_COUNT_N("phy.rx.sync.items", corrected.size());
  }
  const std::span<const Cx> samples(corrected);

  {
    OBS_SPAN("phy.rx.channel_est");
    fe.channel = estimate_channel(samples.subspan(kStfSamples, kLtfSamples));
  }

  // First-pass noise estimate from the SIGNAL symbol's pilots, refined
  // below by averaging over the data symbols.
  const auto signal_samples =
      samples.subspan(kPreambleSamples, kSymbolSamples);
  const CxVec signal_bins = time_to_bins(signal_samples);
  double noise_sum = pilot_noise_estimate(signal_bins, fe.channel, 0);
  int noise_count = 1;
  fe.noise_var = noise_sum;

  {
    OBS_SPAN("phy.rx.signal");
    fe.signal = decode_signal(signal_samples, fe.channel, fe.noise_var);
  }
  if (!fe.signal) return fe;

  const int n_sym =
      symbols_for_psdu(static_cast<std::size_t>(fe.signal->length_octets),
                       *fe.signal->mcs);
  const std::size_t needed =
      static_cast<std::size_t>(kPreambleSamples) +
      static_cast<std::size_t>(kSymbolSamples) *
          static_cast<std::size_t>(1 + n_sym);
  if (samples.size() < needed) {
    fe.signal.reset();
    return fe;
  }

  {
    OBS_SPAN("phy.rx.fft");
    fe.data_bins.reserve(static_cast<std::size_t>(n_sym));
    for (int s = 0; s < n_sym; ++s) {
      const auto offset = static_cast<std::size_t>(kPreambleSamples) +
                          static_cast<std::size_t>(kSymbolSamples) *
                              static_cast<std::size_t>(1 + s);
      fe.data_bins.push_back(
          time_to_bins(samples.subspan(offset, kSymbolSamples)));
      noise_sum += pilot_noise_estimate(fe.data_bins.back(), fe.channel, s + 1);
      ++noise_count;
    }
    OBS_COUNT_N("phy.rx.fft.items",
                static_cast<std::size_t>(n_sym) *
                    static_cast<std::size_t>(kSymbolSamples));
  }
  fe.noise_var = noise_sum / noise_count;
  OBS_COUNT_N("phy.rx.symbols", n_sym);

#if SILENCE_OBS_ON
  // Flight: the channel estimate the whole decode runs on (a = |H|^2 per
  // logical data subcarrier, b = the resulting bin SNR).
  if (obs::flight::TrialRecording::active() != nullptr) {
    const auto dbins = data_subcarrier_bins();
    for (int i = 0; i < kNumDataSubcarriers; ++i) {
      const double h2 = std::norm(
          fe.channel[static_cast<std::size_t>(
              dbins[static_cast<std::size_t>(i)])]);
      FLIGHT_EVENT("rx.csi", obs::flight::kNoIndex, i, h2,
                   h2 / fe.noise_var, 0);
    }
  }
#endif

  // Any whole symbols after the data field are trailer symbols.
  for (std::size_t offset = needed;
       offset + static_cast<std::size_t>(kSymbolSamples) <= samples.size();
       offset += static_cast<std::size_t>(kSymbolSamples)) {
    fe.trailer_bins.push_back(
        time_to_bins(samples.subspan(offset, kSymbolSamples)));
  }
  return fe;
}

DecodeResult decode_data_symbols(const FrontEndResult& fe, const Mcs& mcs,
                                 int length_octets,
                                 const SilenceMask* silence) {
  DecodeResult result;
  const int n_sym = static_cast<int>(fe.data_bins.size());
  if (n_sym == 0) return result;
  if (silence != nullptr &&
      silence->size() != static_cast<std::size_t>(n_sym)) {
    throw std::invalid_argument("decode_data_symbols: mask size mismatch");
  }

  OBS_SPAN("phy.rx.decode");
  const auto data_bins = data_subcarrier_bins();
  result.eq_data.reserve(static_cast<std::size_t>(n_sym));

  // Pass 1 — equalize every symbol (plus per-symbol common-phase-error
  // derotation). The equalized grid is retained in eq_data regardless
  // (EVM needs it), so splitting demapping into a second pass costs
  // nothing and gives each stage its own timing span.
  {
    OBS_SPAN("phy.rx.equalize");
    for (int s = 0; s < n_sym; ++s) {
      const auto sym = static_cast<std::size_t>(s);
      CxVec points = equalize_data_points(fe.data_bins[sym], fe.channel);

      // Common phase error tracking: residual CFO and phase noise rotate
      // every subcarrier of a symbol by the same angle; the four known
      // pilots reveal it (standard 802.11a receiver practice).
      const auto rx_pilots = extract_pilot_points(fe.data_bins[sym]);
      const auto tx_pilots = pilot_values(s + 1);
      const auto pilot_bins = pilot_subcarrier_bins();
      Cx rotation{0.0, 0.0};
      for (int i = 0; i < kNumPilotSubcarriers; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const Cx expected =
            fe.channel[static_cast<std::size_t>(pilot_bins[idx])] *
            tx_pilots[idx];
        rotation += rx_pilots[idx] * std::conj(expected);
      }
      if (std::abs(rotation) > 1e-12) {
        const Cx derotate = std::conj(rotation) / std::abs(rotation);
        for (Cx& p : points) p *= derotate;
      }
      result.eq_data.push_back(std::move(points));
    }
    OBS_COUNT_N("phy.rx.equalize.items",
                static_cast<std::size_t>(n_sym) *
                    static_cast<std::size_t>(kNumDataSubcarriers));
  }

  // Pass 2 — demap to LLRs, injecting EVD erasures on masked subcarriers.
  std::vector<double> llrs;
  llrs.reserve(static_cast<std::size_t>(n_sym) *
               static_cast<std::size_t>(mcs.n_cbps));
  [[maybe_unused]] std::size_t erased_bits = 0;
  {
    OBS_SPAN("phy.rx.demap");
    for (int s = 0; s < n_sym; ++s) {
      const auto sym = static_cast<std::size_t>(s);
      const CxVec& points = result.eq_data[sym];
      for (int i = 0; i < kNumDataSubcarriers; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool erased =
            silence != nullptr && (*silence)[sym][idx] != 0;
        if (erased) {
          // EVD: every constellation bit of a silence symbol is an erasure
          // (paper Eq. 7, the e_k = 0 branch).
          for (int b = 0; b < mcs.n_bpsc; ++b) llrs.push_back(0.0);
          erased_bits += static_cast<std::size_t>(mcs.n_bpsc);
          continue;
        }
        const Cx h = fe.channel[static_cast<std::size_t>(data_bins[idx])];
        const double h2 = std::max(std::norm(h), kMinChannelPower);
        demod_llrs(points[idx], mcs.modulation, fe.noise_var / h2, llrs);
      }
    }
    OBS_COUNT_N("phy.rx.demap.items", llrs.size());
  }
  OBS_COUNT_N("cos.erasures_injected", erased_bits);

  std::vector<double> deint;
  {
    OBS_SPAN("phy.rx.deinterleave");
    deint = deinterleave_llrs(llrs, mcs);
  }
  result.decoder_input_hard.reserve(deint.size());
  for (double v : deint) {
    result.decoder_input_hard.push_back(v < 0.0 ? 1 : 0);
  }

  const auto info_bits = static_cast<std::size_t>(n_sym) *
                         static_cast<std::size_t>(mcs.n_dbps);
  // The DATA field's pad bits are scrambled and therefore nonzero, so the
  // encoder does NOT finish in the all-zero state (only the tail bits are
  // re-zeroed, and padding follows them). Trace back from the best state.
  Bits scrambled;
  {
    OBS_SPAN("phy.rx.viterbi");
    const Llrs mother = depuncture_llrs(deint, mcs.code_rate, info_bits * 2);
    scrambled = shared_decoder().decode(mother, /*terminated=*/false);
    OBS_COUNT_N("phy.rx.viterbi.items", scrambled.size());
  }

#if SILENCE_OBS_ON
  {
    // Corrected-bit diagnostic (paper §"erasure Viterbi decoding"): the
    // decoder's output re-encoded and compared with the hard decisions it
    // was fed — mismatches at non-erased positions are the channel errors
    // plus silence erasures the code absorbed.
    const Bits recoded =
        puncture(convolutional_encode(scrambled), mcs.code_rate);
    std::uint64_t corrected = 0;
    const std::size_t n = std::min(recoded.size(), deint.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (deint[i] != 0.0 &&
          (deint[i] < 0.0 ? 1 : 0) != recoded[i]) {
        ++corrected;
      }
    }
    OBS_COUNT_N("cos.bits_corrected", corrected);
    // Flight: a = corrected bits, b = erased bits fed in, u = decoded
    // bit count — the EVD workload of this packet in one event.
    FLIGHT_EVENT("rx.viterbi", obs::flight::kNoIndex, obs::flight::kNoIndex,
                 corrected, erased_bits, scrambled.size());
  }
#endif

  // Descramble: the transmitter's 7-bit seed is recoverable from the first
  // 7 SERVICE bits, which are zero before scrambling.
  std::uint8_t seed = 0;
  try {
    seed = Scrambler::recover_seed(std::span(scrambled).first(7));
  } catch (const std::runtime_error&) {
    return result;  // hopelessly corrupt
  }
  Scrambler descrambler(seed);
  result.scrambler_seed = seed;
  {
    OBS_SPAN("phy.rx.descramble");
    result.info_bits = descrambler.apply(scrambled);
  }

  const std::size_t psdu_bits = 8 * static_cast<std::size_t>(length_octets);
  if (result.info_bits.size() < kServiceBits + psdu_bits) return result;
  result.psdu = bits_to_bytes(
      std::span(result.info_bits).subspan(kServiceBits, psdu_bits));
  result.crc_ok = check_fcs(result.psdu);
  FLIGHT_EVENT("rx.crc", obs::flight::kNoIndex, obs::flight::kNoIndex,
               result.psdu.size(), 0.0, result.crc_ok ? 1 : 0);
  if (result.crc_ok) {
    OBS_COUNT("phy.rx.crc_ok");
  } else {
    OBS_COUNT("phy.rx.crc_fail");
  }
  return result;
}

RxPacket receive_packet_unaligned(std::span<const Cx> samples) {
  const auto start = detect_frame_start(samples);
  if (!start) return {};
  return receive_packet(samples.subspan(*start));
}

RxPacket receive_packet(std::span<const Cx> samples) {
  RxPacket packet;
  const FrontEndResult fe = receiver_front_end(samples);
  packet.signal = fe.signal;
  if (!fe.signal) return packet;
  DecodeResult decode =
      decode_data_symbols(fe, *fe.signal->mcs, fe.signal->length_octets);
  packet.psdu = std::move(decode.psdu);
  packet.ok = decode.crc_ok;
  return packet;
}

}  // namespace silence
