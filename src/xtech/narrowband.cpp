#include "xtech/narrowband.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/interval_code.h"

namespace silence {
namespace {

void check_block(int block_start, int block_len) {
  if (block_len < 2 || block_start < 0 ||
      block_start + block_len > kNumDataSubcarriers) {
    throw std::invalid_argument("xtech: bad subcarrier block");
  }
}

// Signed frequency index (-26..26) of a logical data subcarrier.
double signed_index(int logical) {
  const int bin = data_subcarrier_bins()[static_cast<std::size_t>(logical)];
  return bin < kFftSize / 2 ? bin : bin - kFftSize;
}

}  // namespace

XtechTxPacket xtech_transmit(std::span<const std::uint8_t> psdu,
                             std::span<const std::uint8_t> message_bits,
                             const XtechTxConfig& config) {
  if (!config.mcs.valid()) {
    throw std::invalid_argument("xtech_transmit: no MCS configured");
  }
  check_block(config.block_start, config.block_len);

  XtechTxPacket packet;
  packet.frame = build_frame(psdu, *config.mcs, config.scrambler_seed);
  packet.mask = empty_mask(packet.frame.num_symbols());

  // Message -> symbol intervals, truncated to the packet length.
  Bits padded(message_bits.begin(), message_bits.end());
  while (padded.size() %
             static_cast<std::size_t>(config.bits_per_interval) !=
         0) {
    padded.push_back(0);
  }
  std::vector<int> intervals =
      bits_to_intervals(padded, config.bits_per_interval);
  const std::size_t fit = intervals_that_fit(
      intervals, static_cast<std::size_t>(packet.frame.num_symbols()));
  intervals.resize(fit);
  packet.bits_sent =
      std::min(message_bits.size(),
               fit * static_cast<std::size_t>(config.bits_per_interval));

  // Blank the block for the marker symbol and after each interval.
  int symbol = 0;
  const auto blank = [&](int s) {
    for (int j = 0; j < config.block_len; ++j) {
      const auto sc = static_cast<std::size_t>(config.block_start + j);
      packet.frame.data_grid[static_cast<std::size_t>(s)][sc] =
          Cx{0.0, 0.0};
      packet.mask[static_cast<std::size_t>(s)][sc] = 1;
    }
    packet.dip_symbols.push_back(s);
    ++packet.dip_count;
  };
  blank(symbol);
  for (int interval : intervals) {
    symbol += interval + 1;
    blank(symbol);
  }

  packet.samples = frame_to_samples(packet.frame);
  return packet;
}

std::vector<double> NarrowbandObserver::energy_trace(
    std::span<const Cx> samples) const {
  check_block(block_start, block_len);
  // Shift the block's center to DC, then a moving-average lowpass whose
  // bandwidth roughly matches a narrowband radio's channel filter.
  const double center =
      (signed_index(block_start) + signed_index(block_start + block_len - 1)) /
      2.0;
  const double step = -2.0 * std::numbers::pi * center / kFftSize;

  // Two cascaded moving averages (a triangular FIR): the squared
  // sidelobes give the ~25 dB of stopband a narrowband radio's channel
  // filter would, so out-of-block subcarriers don't mask the dips.
  constexpr std::size_t kFilterLen = 16;
  std::vector<double> trace(samples.size(), 0.0);
  CxVec shifted(samples.size());
  for (std::size_t n = 0; n < samples.size(); ++n) {
    const double phase = step * static_cast<double>(n);
    shifted[n] = samples[n] * Cx{std::cos(phase), std::sin(phase)};
  }
  CxVec stage1(samples.size());
  Cx acc{0.0, 0.0};
  for (std::size_t n = 0; n < samples.size(); ++n) {
    acc += shifted[n];
    if (n >= kFilterLen) acc -= shifted[n - kFilterLen];
    stage1[n] = acc / static_cast<double>(kFilterLen);
  }
  acc = Cx{0.0, 0.0};
  for (std::size_t n = 0; n < samples.size(); ++n) {
    acc += stage1[n];
    if (n >= kFilterLen) acc -= stage1[n - kFilterLen];
    trace[n] = std::norm(acc / static_cast<double>(kFilterLen));
  }
  return trace;
}

Bits NarrowbandObserver::observe(std::span<const Cx> samples) const {
  const std::vector<double> raw = energy_trace(samples);
  if (raw.size() < 3 * kSymbolSamples) return {};

  // Smooth over half a symbol to suppress constellation fluctuations.
  constexpr std::size_t kSmooth = 40;
  std::vector<double> smooth(raw.size(), 0.0);
  double acc = 0.0;
  for (std::size_t n = 0; n < raw.size(); ++n) {
    acc += raw[n];
    if (n >= kSmooth) acc -= raw[n - kSmooth];
    smooth[n] = acc / kSmooth;
  }

  // Signal level: a high quantile of the trace (the occupied symbols).
  std::vector<double> sorted = smooth;
  std::sort(sorted.begin(), sorted.end());
  const double high = sorted[sorted.size() * 3 / 4];
  if (high <= 0.0) return {};
  const double threshold = high * 0.25;  // dips sit >= 6 dB down

  // Signal extent: first/last sample above threshold.
  std::size_t begin = 0, end = smooth.size();
  while (begin < smooth.size() && smooth[begin] < threshold) ++begin;
  while (end > begin && smooth[end - 1] < threshold) --end;
  if (begin >= end) return {};

  // Dips: low runs of at least half a symbol strictly inside the burst.
  // Consecutive blanked symbols (interval value 0) merge into one long
  // run, so a run of ~m symbol durations yields m dips a symbol apart.
  std::vector<double> dip_positions;  // in units of OFDM symbols
  std::size_t run_start = 0;
  bool in_run = false;
  const auto flush_run = [&](std::size_t run_end) {
    const std::size_t len = run_end - run_start;
    if (len < kSymbolSamples / 2) return;
    const int count = std::max(
        1, static_cast<int>(std::lround(static_cast<double>(len) /
                                        kSymbolSamples)));
    const double first_center =
        (static_cast<double>(run_start) +
         0.5 * (static_cast<double>(len) -
                (count - 1) * static_cast<double>(kSymbolSamples))) /
        kSymbolSamples;
    for (int m = 0; m < count; ++m) {
      dip_positions.push_back(first_center + m);
    }
  };
  for (std::size_t n = begin; n < end; ++n) {
    const bool low = smooth[n] < threshold;
    if (low && !in_run) {
      in_run = true;
      run_start = n;
    } else if (!low && in_run) {
      in_run = false;
      flush_run(n);
    }
  }

  if (dip_positions.size() < 2) return {};
  std::vector<int> intervals;
  intervals.reserve(dip_positions.size() - 1);
  for (std::size_t i = 1; i < dip_positions.size(); ++i) {
    const double symbols = dip_positions[i] - dip_positions[i - 1];
    intervals.push_back(static_cast<int>(std::lround(symbols)) - 1);
  }
  return intervals_to_bits_tolerant(intervals, bits_per_interval);
}

}  // namespace silence
