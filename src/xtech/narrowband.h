// Cross-technology CoS: silence patterns readable by a narrowband
// energy sensor (the FreeBee/Esense line of work the paper's related-
// work section cites).
//
// A ZigBee-class device cannot decode OFDM, but it can measure RSSI in
// its own ~2 MHz band. When the WiFi sender silences a contiguous BLOCK
// of subcarriers covering that band for a whole OFDM symbol, the
// narrowband device sees a clean energy dip — no WiFi receiver chain
// required. Messages use the same interval modulation as in-band CoS,
// with intervals counted in OFDM symbols.
//
// The cost side mirrors CoS: the blanked symbols are erasures the WiFi
// receiver's EVD absorbs, so the WiFi data packet still decodes.
#pragma once

#include <cstdint>
#include <span>

#include "core/silence_plan.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {

struct XtechTxConfig {
  McsId mcs;  // invalid when default-constructed
  // First logical data subcarrier of the blanked block and its width.
  // 8 subcarriers = 2.5 MHz, about a ZigBee channel.
  int block_start = 20;
  int block_len = 8;
  int bits_per_interval = 3;  // intervals in symbols are short; k small
  std::uint8_t scrambler_seed = 0x5D;
};

struct XtechTxPacket {
  TxFrame frame;
  CxVec samples;
  std::size_t bits_sent = 0;
  std::size_t dip_count = 0;   // fully-blanked marker symbols
  SilenceMask mask;            // ground truth (for the WiFi receiver)
  std::vector<int> dip_symbols;  // indices of blanked OFDM symbols
};

// Embeds `message_bits` as whole-symbol block dips.
XtechTxPacket xtech_transmit(std::span<const std::uint8_t> psdu,
                             std::span<const std::uint8_t> message_bits,
                             const XtechTxConfig& config);

// --- The narrowband observer -------------------------------------------
// Sees only raw samples; knows nothing about OFDM except the nominal
// symbol duration. Demodulates dips from its in-band RSSI trace.
struct NarrowbandObserver {
  int block_start = 20;
  int block_len = 8;
  int bits_per_interval = 3;

  // In-band energy trace, one value per sample (frequency-shifted moving
  // average over `block_len` subcarriers' worth of bandwidth).
  std::vector<double> energy_trace(std::span<const Cx> samples) const;

  // Decodes the message: finds dips in the energy trace, converts dip
  // spacing to symbol-interval values, applies the interval codec.
  Bits observe(std::span<const Cx> samples) const;
};

}  // namespace silence
