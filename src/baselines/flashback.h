// Flashback-style in-band side channel (Cidon et al., SIGCOMM 2012) —
// the closest prior design the paper compares CoS against (§V).
//
// Instead of silencing symbols, Flashback *adds* short high-power tones
// ("flashes") on top of ongoing OFDM data symbols. A flash's subcarrier
// position encodes the message bits; the receiver detects flashes as
// energy spikes well above the data level. The flashed data symbol is
// corrupted, so — like CoS — the scheme leans on the channel code, and a
// receiver may erase detected flash positions before decoding.
//
// The paper's critique, which the baseline lets us measure: each flash
// costs extra transmit energy (flash power is tens of times the data
// symbol power), while a CoS silence is free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/silence_plan.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

namespace silence {

struct FlashbackConfig {
  McsId mcs;  // invalid when default-constructed
  // Flash tone power relative to a unit-energy data symbol. The hJam/
  // Flashback literature uses tens of dB; 64x (18 dB) per the paper.
  double flash_power = 64.0;
  // One flash at most every `symbol_stride` OFDM symbols (duty-cycle cap
  // protecting the data stream).
  int symbol_stride = 2;
  // Flash positions use 2^bits_per_flash predetermined subcarriers.
  int bits_per_flash = 5;
  std::uint8_t scrambler_seed = 0x5D;
};

struct FlashbackTxPacket {
  TxFrame frame;
  CxVec samples;
  std::size_t bits_sent = 0;
  std::size_t flash_count = 0;
  // Ground-truth flash positions: mask[symbol][subcarrier].
  SilenceMask mask;
  // Extra transmit energy spent on flashes (units of data-symbol energy).
  double flash_energy = 0.0;
};

// Embeds `message_bits` as flashes over the data packet.
FlashbackTxPacket flashback_transmit(std::span<const std::uint8_t> psdu,
                                     std::span<const std::uint8_t> message_bits,
                                     const FlashbackConfig& config);

struct FlashbackRxPacket {
  FrontEndResult fe;
  bool data_ok = false;
  Bytes psdu;
  Bits message_bits;
  SilenceMask detected_mask;  // detected flash positions
};

// Receives a Flashback burst: detects energy spikes, decodes the flash
// positions into bits, erases flashed symbols, and decodes the data.
FlashbackRxPacket flashback_receive(std::span<const Cx> samples,
                                    const FlashbackConfig& config);

// The subcarriers flash position bits map onto (2^bits_per_flash of the
// 48, spread across the band).
std::vector<int> flashback_subcarriers(int bits_per_flash);

}  // namespace silence
