#include "baselines/flashback.h"

#include <cmath>
#include <stdexcept>

#include "phy/ofdm.h"

namespace silence {
namespace {

void check_config(const FlashbackConfig& config) {
  if (!config.mcs.valid()) {
    throw std::invalid_argument("flashback: no MCS configured");
  }
  if (config.bits_per_flash < 1 || config.bits_per_flash > 5) {
    throw std::invalid_argument("flashback: bits_per_flash must be 1..5");
  }
  if (config.symbol_stride < 1) {
    throw std::invalid_argument("flashback: stride must be >= 1");
  }
  if (config.flash_power <= 1.0) {
    throw std::invalid_argument("flashback: flash power must exceed data");
  }
}

}  // namespace

std::vector<int> flashback_subcarriers(int bits_per_flash) {
  const int count = 1 << bits_per_flash;
  std::vector<int> subcarriers;
  subcarriers.reserve(static_cast<std::size_t>(count));
  // Spread the positions evenly across the 48 data subcarriers.
  for (int i = 0; i < count; ++i) {
    subcarriers.push_back(i * kNumDataSubcarriers / count);
  }
  return subcarriers;
}

FlashbackTxPacket flashback_transmit(
    std::span<const std::uint8_t> psdu,
    std::span<const std::uint8_t> message_bits,
    const FlashbackConfig& config) {
  check_config(config);
  FlashbackTxPacket packet;
  packet.frame = build_frame(psdu, *config.mcs, config.scrambler_seed);
  packet.mask = empty_mask(packet.frame.num_symbols());

  const auto positions = flashback_subcarriers(config.bits_per_flash);
  const auto k = static_cast<std::size_t>(config.bits_per_flash);
  const double amplitude = std::sqrt(config.flash_power);

  // One flash per stride-th symbol while message bits remain.
  std::size_t offset = 0;
  for (int s = 0; s < packet.frame.num_symbols();
       s += config.symbol_stride) {
    if (offset + k > message_bits.size()) break;
    const auto value = static_cast<std::size_t>(
        bits_to_uint(message_bits.subspan(offset, k)));
    const int subcarrier = positions[value];
    // The flash rides ON TOP of the data symbol (additive tone).
    packet.frame.data_grid[static_cast<std::size_t>(s)]
                          [static_cast<std::size_t>(subcarrier)] +=
        Cx{amplitude, 0.0};
    packet.mask[static_cast<std::size_t>(s)]
               [static_cast<std::size_t>(subcarrier)] = 1;
    packet.flash_energy += config.flash_power;
    ++packet.flash_count;
    offset += k;
  }
  packet.bits_sent = offset;
  packet.samples = frame_to_samples(packet.frame);
  return packet;
}

FlashbackRxPacket flashback_receive(std::span<const Cx> samples,
                                    const FlashbackConfig& config) {
  check_config(config);
  FlashbackRxPacket packet;
  packet.fe = receiver_front_end(samples);
  if (!packet.fe.signal) return packet;
  const Mcs& mcs = *packet.fe.signal->mcs;

  const auto positions = flashback_subcarriers(config.bits_per_flash);
  const auto data_bins = data_subcarrier_bins();

  // Flash detection: a flashed bin carries |H|^2 * flash_power on top of
  // the data; flag the strongest candidate bin of a symbol when its
  // energy rises far above the expected data level.
  packet.detected_mask = empty_mask(
      static_cast<int>(packet.fe.data_bins.size()));
  for (std::size_t s = 0; s < packet.fe.data_bins.size(); ++s) {
    int best = -1;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const int sc = positions[i];
      const auto bin = static_cast<std::size_t>(
          data_bins[static_cast<std::size_t>(sc)]);
      const double h2 = std::max(
          std::norm(packet.fe.channel[bin]), 1e-12);
      const double ratio = std::norm(packet.fe.data_bins[s][bin]) / h2;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = sc;
      }
    }
    // Expected equalized energy of plain data ~ 1; a flash pushes it to
    // ~flash_power. Threshold at the geometric middle.
    if (best >= 0 && best_ratio > std::sqrt(config.flash_power) * 2.0) {
      packet.detected_mask[s][static_cast<std::size_t>(best)] = 1;
      // Decode the position back to bits.
      for (std::size_t i = 0; i < positions.size(); ++i) {
        if (positions[i] == best) {
          const Bits bits = uint_to_bits(static_cast<std::uint64_t>(i),
                                         config.bits_per_flash);
          packet.message_bits.insert(packet.message_bits.end(),
                                     bits.begin(), bits.end());
          break;
        }
      }
    }
  }

  // Data decode with detected flashes erased (EVD), as Flashback's
  // receiver does for flashed positions.
  const DecodeResult decode =
      decode_data_symbols(packet.fe, mcs, packet.fe.signal->length_octets,
                          &packet.detected_mask);
  packet.data_ok = decode.crc_ok;
  packet.psdu = decode.psdu;
  return packet;
}

}  // namespace silence
