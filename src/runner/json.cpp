#include "runner/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace silence::runner {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

Json& Json::set(std::string_view key, Json value) {
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  obj.emplace_back(std::string(key), std::move(value));
  return obj.back().second;
}

const Json* Json::find(std::string_view key) const {
  const auto& obj = std::get<Object>(value_);
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void Json::write(std::string& out, int indent, int depth) const {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::nullptr_t>) {
          out += "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          out += v ? "true" : "false";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          char buf[24];
          const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
          (void)ec;
          out.append(buf, ptr);
        } else if constexpr (std::is_same_v<T, double>) {
          out += format_double(v);
        } else if constexpr (std::is_same_v<T, std::string>) {
          append_escaped(out, v);
        } else if constexpr (std::is_same_v<T, Array>) {
          if (v.empty()) {
            out += "[]";
            return;
          }
          out += '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i) out += ',';
            if (indent) append_indent(out, indent, depth + 1);
            v[i].write(out, indent, depth + 1);
          }
          if (indent) append_indent(out, indent, depth);
          out += ']';
        } else if constexpr (std::is_same_v<T, Object>) {
          if (v.empty()) {
            out += "{}";
            return;
          }
          out += '{';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i) out += ',';
            if (indent) append_indent(out, indent, depth + 1);
            append_escaped(out, v[i].first);
            out += indent ? ": " : ":";
            v[i].second.write(out, indent, depth + 1);
          }
          if (indent) append_indent(out, indent, depth);
          out += '}';
        }
      },
      value_);
}

std::string Json::dump() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

std::string Json::dump_compact() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

}  // namespace silence::runner
