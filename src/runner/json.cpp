#include "runner/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace silence::runner {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

// Recursive-descent parser over a string_view. Depth-capped so a
// pathological input cannot exhaust the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      // RFC 8259 leaves duplicate-key behavior implementation-defined;
      // every producer in this repo writes unique keys, so a duplicate
      // can only mean a corrupt or hand-mangled artifact — reject it
      // rather than let one of the two values win silently.
      for (const auto& [existing, value] : obj) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Surrogate pair: a high surrogate must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == int_start) fail("invalid value");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zero in number");
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp) fail("digits required in exponent");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("Json: value is not ") + wanted);
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (!is_int()) type_error("an integer");
  return std::get<std::int64_t>(value_);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (!std::holds_alternative<double>(value_)) type_error("a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

Json& Json::set(std::string_view key, Json value) {
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  obj.emplace_back(std::string(key), std::move(value));
  return obj.back().second;
}

const Json* Json::find(std::string_view key) const {
  const auto& obj = std::get<Object>(value_);
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void Json::write(std::string& out, int indent, int depth) const {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::nullptr_t>) {
          out += "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          out += v ? "true" : "false";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          char buf[24];
          const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
          (void)ec;
          out.append(buf, ptr);
        } else if constexpr (std::is_same_v<T, double>) {
          out += format_double(v);
        } else if constexpr (std::is_same_v<T, std::string>) {
          append_escaped(out, v);
        } else if constexpr (std::is_same_v<T, Array>) {
          if (v.empty()) {
            out += "[]";
            return;
          }
          out += '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i) out += ',';
            if (indent) append_indent(out, indent, depth + 1);
            v[i].write(out, indent, depth + 1);
          }
          if (indent) append_indent(out, indent, depth);
          out += ']';
        } else if constexpr (std::is_same_v<T, Object>) {
          if (v.empty()) {
            out += "{}";
            return;
          }
          out += '{';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i) out += ',';
            if (indent) append_indent(out, indent, depth + 1);
            append_escaped(out, v[i].first);
            out += indent ? ": " : ":";
            v[i].second.write(out, indent, depth + 1);
          }
          if (indent) append_indent(out, indent, depth);
          out += '}';
        }
      },
      value_);
}

std::string Json::dump() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

std::string Json::dump_compact() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

}  // namespace silence::runner
