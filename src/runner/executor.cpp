#include "runner/executor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace silence::runner {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t count, int threads, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  chunk = std::max<std::size_t>(chunk, 1);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    const auto n = static_cast<std::size_t>(
        std::min<std::size_t>(static_cast<std::size_t>(threads),
                              (count + chunk - 1) / chunk));
    pool.reserve(n);
    for (std::size_t t = 0; t < n; ++t) pool.emplace_back(worker);
  }  // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace silence::runner
