// A minimal ordered JSON value with deterministic serialization and a
// strict parser.
//
// The result sinks need output that is byte-identical across runs and
// thread counts so result files can be diffed between PRs; object keys
// keep insertion order and doubles serialize via the shortest
// round-trippable form (std::to_chars), which is fully deterministic.
// Parsing exists for the tooling side — flight-recorder replay
// (tools/silence_diag) and perf-baseline diffing (tools/bench_compare)
// read back the files the sinks write. parse(dump(x)) reproduces x
// exactly, including every double bit pattern.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace silence::runner {

class Json {
 public:
  using Array = std::vector<Json>;
  // Insertion-ordered object: stable serialization, no hashing.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array(std::initializer_list<Json> items = {}) {
    return Json(Array(items));
  }
  static Json object() { return Json(Object{}); }

  // Parses strict RFC 8259 JSON; throws std::runtime_error (with a byte
  // offset) on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_number() const {
    return is_int() || std::holds_alternative<double>(value_);
  }

  // Typed accessors; throw std::runtime_error on a type mismatch.
  // as_double() accepts integers too (JSON numbers are one type).
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // Object access: set() replaces an existing key or appends a new one.
  Json& set(std::string_view key, Json value);
  const Json* find(std::string_view key) const;

  // Array access. GCC 12 issues -Wmaybe-uninitialized false positives
  // when this inlines a freshly-constructed variant temporary into the
  // caller (the inactive string/vector alternatives look "read" to the
  // uninit pass); suppress locally rather than in every caller.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  void push_back(Json value) { std::get<Array>(value_).push_back(std::move(value)); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  std::size_t size() const;

  // Serializes with 2-space indentation and a trailing newline at the
  // top level; `dump_compact` emits a single line.
  std::string dump() const;
  std::string dump_compact() const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;

  void write(std::string& out, int indent, int depth) const;
};

// Deterministic double formatting used by the JSON writer (shortest
// round-trip via std::to_chars); exposed for tests. Non-finite values
// serialize as null per RFC 8259.
std::string format_double(double v);

}  // namespace silence::runner
