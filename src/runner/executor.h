// Chunked thread-pool execution of an index space.
//
// The executor owns no state that influences results: it only decides
// which thread runs which index. Work is handed out in contiguous chunks
// through a single atomic cursor (cheap, cache-friendly, and naturally
// load-balancing when per-index cost varies, as it does when a sweep
// point near a rate-region floor binary-searches further than others).
#pragma once

#include <cstddef>
#include <functional>

namespace silence::runner {

// Threads actually used for a requested count: `requested` if > 0, else
// std::thread::hardware_concurrency() (min 1).
int resolve_threads(int requested);

// Runs fn(i) for every i in [0, count). With threads <= 1 the calls run
// inline on the caller's thread; otherwise `threads` std::jthreads pull
// chunks of `chunk` consecutive indices until the space is exhausted.
// The first exception thrown by any fn is rethrown on the caller's
// thread after all workers have joined.
void parallel_for(std::size_t count, int threads, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn);

}  // namespace silence::runner
