#include "runner/seed.h"

namespace silence::runner {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t point_index,
                         std::uint64_t trial_index) {
  // Chain the three counters through the mixer; each stage is bijective
  // in its input, so (base, point, trial) -> seed is collision-free for
  // fixed values of the other two coordinates.
  std::uint64_t s = mix64(base_seed);
  s = mix64(s ^ (point_index + 0x632be59bd9b4e019ULL));
  s = mix64(s ^ (trial_index + 0x9e3779b97f4a7c15ULL));
  return s == 0 ? 0x2545f4914f6cdd1dULL : s;
}

std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t stream_index) {
  const std::uint64_t s = mix64(seed ^ mix64(stream_index + 1));
  return s == 0 ? 0x2545f4914f6cdd1dULL : s;
}

}  // namespace silence::runner
