#include "runner/sinks.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <stdexcept>
#include <variant>

#include "obs/health/health.h"

namespace silence::runner {

namespace {

// Renders one JSON cell for the aligned console table.
std::string cell_text(const Json& cell, int precision) {
  // The table prints doubles at the column's precision; everything else
  // falls back to the compact JSON form (strings lose their quotes).
  const std::string compact = cell.dump_compact();
  if (compact == "null") return "-";
  if (!compact.empty() && compact.front() == '"' && compact.back() == '"') {
    return compact.substr(1, compact.size() - 2);
  }
  if (precision >= 0 &&
      compact.find_first_not_of("-0123456789.eE+") == std::string::npos) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, std::stod(compact));
    return buf;
  }
  return compact;
}

}  // namespace

void SweepReport::add_row(std::vector<Json> cells) {
  if (cells.size() != columns.size()) {
    throw std::invalid_argument("SweepReport::add_row: cell/column mismatch");
  }
  rows.push_back(std::move(cells));
}

void TableSink::write(const SweepReport& report) {
  std::printf("=============================================================\n");
  std::printf("%s: %s\n", report.title.c_str(), report.description.c_str());
  std::printf("=============================================================\n");
  for (const auto& col : report.columns) {
    std::printf("%*s", col.width, col.name.c_str());
  }
  std::printf("\n");
  for (const auto& row : report.rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%*s", report.columns[c].width,
                  cell_text(row[c], report.columns[c].precision).c_str());
    }
    std::printf("\n");
  }
  for (const auto& note : report.notes) {
    std::printf("%s\n", note.c_str());
  }
  std::printf("[%zu trials, %d thread%s, %.2f s]\n", report.trials_run,
              report.threads, report.threads == 1 ? "" : "s",
              report.wall_seconds);
}

Json JsonSink::payload(const SweepReport& report) {
  Json root = Json::object();
  root.set("bench", report.bench);
  root.set("title", report.title);
  root.set("description", report.description);
  root.set("schema_version", 1);
  root.set("grid", report.grid);
  Json names = Json::array();
  for (const auto& col : report.columns) names.push_back(col.name);
  root.set("columns", std::move(names));
  Json points = Json::array();
  for (const auto& row : report.rows) {
    Json point = Json::object();
    for (std::size_t c = 0; c < row.size(); ++c) {
      point.set(report.columns[c].name, row[c]);
    }
    points.push_back(std::move(point));
  }
  root.set("points", std::move(points));
  return root;
}

std::string timing_sidecar_path(const std::string& json_path) {
  std::string path = json_path;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    path.resize(path.size() - 5);
  }
  return path + ".timing.json";
}

std::string metrics_sidecar_path(const std::string& json_path) {
  std::string path = json_path;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    path.resize(path.size() - 5);
  }
  return path + ".metrics.json";
}

std::string telemetry_sidecar_path(const std::string& json_path) {
  std::string path = json_path;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    path.resize(path.size() - 5);
  }
  return path + ".telemetry.json";
}

std::string health_sidecar_path(const std::string& json_path) {
  std::string path = json_path;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    path.resize(path.size() - 5);
  }
  return path + ".health.json";
}

Json metrics_json(const obs::MetricsSnapshot& snapshot) {
  Json root = Json::object();
  Json counters = Json::object();
  for (const auto& c : snapshot.counters) {
    counters.set(c.name, static_cast<std::int64_t>(c.value));
  }
  root.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& g : snapshot.gauges) {
    gauges.set(g.name, static_cast<std::int64_t>(g.value));
  }
  root.set("gauges", std::move(gauges));
  Json histograms = Json::object();
  for (const auto& h : snapshot.histograms) {
    Json entry = Json::object();
    entry.set("count", static_cast<std::int64_t>(h.count));
    entry.set("sum", static_cast<std::int64_t>(h.sum));
    entry.set("min", static_cast<std::int64_t>(h.min));
    entry.set("max", static_cast<std::int64_t>(h.max));
    entry.set("mean", h.mean());
    // Bucket-interpolated latency quantiles. Appended after the legacy
    // fields, so pre-existing keys keep their exact bytes.
    entry.set("p50", h.quantile(0.50));
    entry.set("p95", h.quantile(0.95));
    entry.set("p99", h.quantile(0.99));
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    Json floors = Json::array();
    Json buckets = Json::array();
    for (std::size_t b = 0; b < last; ++b) {
      floors.push_back(
          static_cast<std::int64_t>(obs::histogram_bucket_floor(b)));
      buckets.push_back(static_cast<std::int64_t>(h.buckets[b]));
    }
    entry.set("bucket_floors", std::move(floors));
    entry.set("buckets", std::move(buckets));
    histograms.set(h.name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

Json merge_metrics_json(const std::vector<Json>& docs) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, obs::HistogramSnapshot> histograms;

  const auto section = [](const Json& doc, std::string_view key) {
    static const Json empty = Json::object();
    const Json* value = doc.find(key);
    if (value == nullptr) return &empty;
    if (!value->is_object()) {
      throw std::runtime_error("merge_metrics_json: '" + std::string(key) +
                               "' is not an object");
    }
    return value;
  };

  for (const Json& doc : docs) {
    for (const auto& [name, value] : section(doc, "counters")->as_object()) {
      counters[name] += static_cast<std::uint64_t>(value.as_int());
    }
    for (const auto& [name, value] : section(doc, "gauges")->as_object()) {
      const std::int64_t v = value.as_int();
      const auto [it, inserted] = gauges.emplace(name, v);
      if (!inserted && v > it->second) it->second = v;
    }
    for (const auto& [name, value] : section(doc, "histograms")->as_object()) {
      const auto field = [&](std::string_view key) -> const Json& {
        const Json* f = value.find(key);
        if (f == nullptr) {
          throw std::runtime_error("merge_metrics_json: histogram '" + name +
                                   "' missing '" + std::string(key) + "'");
        }
        return *f;
      };
      obs::HistogramSnapshot& h = histograms[name];
      h.name = name;
      h.buckets.resize(obs::kHistogramBuckets, 0);
      const std::uint64_t count =
          static_cast<std::uint64_t>(field("count").as_int());
      if (count == 0) continue;
      const std::uint64_t min =
          static_cast<std::uint64_t>(field("min").as_int());
      const std::uint64_t max =
          static_cast<std::uint64_t>(field("max").as_int());
      if (h.count == 0 || min < h.min) h.min = min;
      if (h.count == 0 || max > h.max) h.max = max;
      h.count += count;
      h.sum += static_cast<std::uint64_t>(field("sum").as_int());
      // metrics_json trims trailing zero buckets, so position == bucket
      // index for everything it kept.
      const Json::Array& buckets = field("buckets").as_array();
      if (buckets.size() > obs::kHistogramBuckets) {
        throw std::runtime_error("merge_metrics_json: histogram '" + name +
                                 "' has too many buckets");
      }
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        h.buckets[b] += static_cast<std::uint64_t>(buckets[b].as_int());
      }
    }
  }

  obs::MetricsSnapshot merged;
  for (auto& [name, value] : counters) merged.counters.push_back({name, value});
  for (auto& [name, value] : gauges) merged.gauges.push_back({name, value});
  for (auto& [name, h] : histograms) merged.histograms.push_back(std::move(h));
  return metrics_json(merged);
}

void JsonSink::write(const SweepReport& report) {
  write_json_file(path_, payload(report));

  const std::string timing_path = timing_sidecar_path(path_);
  Json timing = Json::object();
  timing.set("bench", report.bench);
  timing.set("threads", report.threads);
  timing.set("trials_run", static_cast<std::int64_t>(report.trials_run));
  timing.set("wall_seconds", report.wall_seconds);
  write_json_file(timing_path, timing);

  // Metrics sidecar: the pipeline-wide obs snapshot for this run. Like
  // timing it never touches the main file — counter values are seed-
  // deterministic, but the .ns histograms are wall-clock.
  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  if (!snapshot.empty()) {
    write_json_file(metrics_sidecar_path(path_), metrics_json(snapshot));
  }

  // Health sidecar: every quantity seed-deterministic, so the file is
  // byte-identical at any thread count. Empty under SILENCE_OBS=OFF (the
  // macros compile away) and for benches that never touch the CoS path.
  const obs::health::HealthSnapshot health =
      obs::health::Registry::global().snapshot();
  if (!health.empty()) {
    write_json_file(health_sidecar_path(path_), obs::health::health_json(health));
  }
}

void write_json_file(const std::string& path, const Json& value) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_json_file: cannot open " + path);
  }
  out << value.dump();
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_json_file: cannot open " + path);
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("read_json_file: read error on " + path);
  }
  return Json::parse(text);
}

}  // namespace silence::runner
