// Pluggable result sinks for sweep reports.
//
// A bench renders its merged sweep results into a SweepReport (named
// columns + one row of JSON cells per grid point) and hands it to any
// number of sinks: TableSink reproduces the human-readable console
// tables, JsonSink writes `results/<bench>.json` for machine diffing.
//
// Determinism contract: the main JSON file contains only seed-derived
// data, so two runs over the same grid are byte-identical regardless of
// thread count. Timing (wall-clock, thread count) goes to a separate
// `<bench>.timing.json` sidecar precisely so it cannot perturb diffs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runner/json.h"

namespace silence::runner {

struct Column {
  std::string name;
  int width = 12;      // table column width
  int precision = -1;  // decimals for doubles in the table; -1 = %g
};

struct SweepReport {
  std::string bench;        // file stem, e.g. "fig09_capacity"
  std::string title;        // e.g. "Fig. 9"
  std::string description;  // one line under the title
  Json grid = Json::object();  // grid metadata: axes, trials, base_seed
  std::vector<Column> columns;
  std::vector<std::vector<Json>> rows;  // one row per grid point
  std::vector<std::string> notes;  // trailing commentary (table only)
  // Timing — reported via the sidecar, never the main result file.
  int threads = 1;
  double wall_seconds = 0.0;
  std::size_t trials_run = 0;

  // Appends a row; cells must match `columns` in count and order.
  void add_row(std::vector<Json> cells);
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(const SweepReport& report) = 0;
};

// Human-readable aligned table on stdout (the historical bench output).
class TableSink : public ResultSink {
 public:
  void write(const SweepReport& report) override;
};

// Structured results at `path` plus timing at `<path minus .json>.timing.json`.
class JsonSink : public ResultSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  void write(const SweepReport& report) override;

  // The deterministic main-file payload for `report` (exposed for the
  // determinism regression tests).
  static Json payload(const SweepReport& report);

 private:
  std::string path_;
};

// Serializes `value` to `path` (dump() form), creating parent directories.
void write_json_file(const std::string& path, const Json& value);

// Reads and parses a JSON file; throws std::runtime_error on IO or parse
// failure. Round-trips write_json_file exactly.
Json read_json_file(const std::string& path);

// `results/foo.json` -> `results/foo.timing.json`.
std::string timing_sidecar_path(const std::string& json_path);

// `results/foo.json` -> `results/foo.metrics.json`.
std::string metrics_sidecar_path(const std::string& json_path);

// `results/foo.json` -> `results/foo.telemetry.json` (fabric supervisor
// shard-lifecycle telemetry; see fabric/telemetry.h).
std::string telemetry_sidecar_path(const std::string& json_path);

// `results/foo.json` -> `results/foo.health.json` (PHY signal-health
// snapshot; see obs/health/health.h). Written only when the health
// registry recorded anything, i.e. never under SILENCE_OBS=OFF.
std::string health_sidecar_path(const std::string& json_path);

// The obs snapshot rendered as a runner::Json object (counters, gauges,
// histograms keyed by metric name). Used for the metrics sidecar and by
// perf_phy's stage-throughput record.
Json metrics_json(const obs::MetricsSnapshot& snapshot);

// Deterministic merge of several metrics_json() documents (e.g. one per
// fabric worker plus the supervisor's own snapshot): counters are summed,
// gauges take the maximum, histograms are merged bucket-wise with mean /
// p50 / p95 / p99 recomputed from the combined buckets. Output follows
// the metrics_json() schema with every section sorted by name. Throws
// std::runtime_error on a malformed document.
Json merge_metrics_json(const std::vector<Json>& docs);

}  // namespace silence::runner
