// Counter-based deterministic seeding for Monte-Carlo sweeps.
//
// Every trial in a sweep derives its RNG seed purely from its coordinates
// (base_seed, point_index, trial_index), never from which thread runs it
// or in what order. Results are therefore bit-identical at any thread
// count, and an individual trial can be re-run in isolation by
// reconstructing its seed.
#pragma once

#include <cstdint>

namespace silence::runner {

// SplitMix64 finalizer: a bijective avalanche mix, so distinct counter
// values never collide and nearby counters decorrelate fully.
std::uint64_t mix64(std::uint64_t x);

// The seed for trial `trial_index` of sweep point `point_index` under
// `base_seed`. Guaranteed non-zero (some PRNGs degenerate on zero seeds).
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t point_index,
                         std::uint64_t trial_index);

// A decorrelated sub-stream of a trial seed, for trials that need several
// independent RNGs (e.g. one per simulated station).
std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t stream_index);

}  // namespace silence::runner
