// Deterministic parallel Monte-Carlo sweeps.
//
// A SweepGrid describes WHAT to run: a list of parameter points and a
// trial count per point, under one base seed. run_sweep() decides HOW:
// it fans the (point x trial) space across a thread pool, derives every
// trial's RNG seed from its coordinates only (runner/seed.h), stores
// each trial's result in its own slot, and merges per point in strict
// trial order on the caller's thread. The outcome is therefore
// bit-identical at any thread count — parallelism changes wall-clock,
// never results.
#pragma once

#include <chrono>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "runner/executor.h"
#include "runner/seed.h"

namespace silence::runner {

template <typename Point>
struct SweepGrid {
  std::vector<Point> points;
  std::size_t trials = 1;        // Monte-Carlo trials per point
  std::uint64_t base_seed = 1;
};

struct RunnerOptions {
  int threads = 0;        // 0 = hardware concurrency
  std::size_t chunk = 1;  // trials handed to a worker at a time
};

// Coordinates of one trial, as seen by the trial function.
struct TrialContext {
  std::size_t point_index = 0;
  std::size_t trial_index = 0;
  std::uint64_t seed = 0;  // trial_seed(base, point_index, trial_index)
};

template <typename Result>
struct SweepOutcome {
  std::vector<Result> point_results;  // one merged Result per grid point
  int threads = 1;                    // threads actually used
  double wall_seconds = 0.0;
  std::size_t trials_run = 0;
};

// Runs `trial(point, ctx) -> Result` over the whole grid and merges each
// point's trials in index order with `merge(Result& into, Result&& part)`.
// Result must be default-constructible (slot storage) and movable.
template <typename Point, typename TrialFn, typename MergeFn>
auto run_sweep(const SweepGrid<Point>& grid, const RunnerOptions& options,
               TrialFn&& trial, MergeFn&& merge)
    -> SweepOutcome<std::invoke_result_t<TrialFn&, const Point&,
                                         const TrialContext&>> {
  using Result =
      std::invoke_result_t<TrialFn&, const Point&, const TrialContext&>;
  static_assert(std::is_default_constructible_v<Result>,
                "run_sweep stores per-trial results in pre-sized slots");

  SweepOutcome<Result> outcome;
  outcome.threads = resolve_threads(options.threads);
  const std::size_t trials = grid.trials == 0 ? 1 : grid.trials;
  const std::size_t total = grid.points.size() * trials;
  outcome.trials_run = total;

  OBS_GAUGE_SET("runner.threads", outcome.threads);
  OBS_COUNT_N("runner.trials", total);

  const auto start = std::chrono::steady_clock::now();
  std::vector<Result> slots(total);
  parallel_for(total, outcome.threads, options.chunk, [&](std::size_t i) {
    OBS_SPAN("runner.trial");
    TrialContext ctx;
    ctx.point_index = i / trials;
    ctx.trial_index = i % trials;
    ctx.seed = trial_seed(grid.base_seed, ctx.point_index, ctx.trial_index);
    slots[i] = trial(grid.points[ctx.point_index], ctx);
  });

  // Ordered reduction: point p merges its trials 0..trials-1 in sequence,
  // so floating-point accumulation order is fixed regardless of which
  // threads produced the slots.
  outcome.point_results.reserve(grid.points.size());
  for (std::size_t p = 0; p < grid.points.size(); ++p) {
    Result merged = std::move(slots[p * trials]);
    for (std::size_t t = 1; t < trials; ++t) {
      merge(merged, std::move(slots[p * trials + t]));
    }
    outcome.point_results.push_back(std::move(merged));
  }
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return outcome;
}

// Overload merging with `into += part` (ErrorStats and friends).
template <typename Point, typename TrialFn>
auto run_sweep(const SweepGrid<Point>& grid, const RunnerOptions& options,
               TrialFn&& trial) {
  return run_sweep(grid, options, std::forward<TrialFn>(trial),
                   [](auto& into, auto&& part) { into += part; });
}

}  // namespace silence::runner
