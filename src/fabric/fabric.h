// The sweep fabric: runner::run_sweep semantics, sharded across worker
// processes.
//
// Fabric::run() is a drop-in analogue of runner::run_sweep() with three
// execution modes decided by FabricConfig:
//
//   inline     (workers <= 1, no shard spec): delegates straight to
//              runner::run_sweep — the fabric adds nothing.
//   supervisor (workers > 1): plans contiguous shards over the linear
//              (point x trial) slot space, re-execs this binary once per
//              shard with --shard-spec/--shard-out, supervises the
//              workers (timeout, bounded retry with backoff, straggler
//              re-dispatch; fabric/supervisor.h), then decodes every
//              shard's slots and reduces them in EXACTLY the order
//              runner::run_sweep uses: point by point, trial by trial.
//   worker     (shard spec present): runs only its slot range, encodes
//              each slot's result, and writes one self-contained JSON
//              artifact (fabric/transport.h) plus a metrics sidecar.
//
// Byte-identity argument: every slot's seed is a pure function of its
// coordinates, each slot's result is shipped individually (integers
// exact, doubles via the shortest-round-trip writer, so decode(encode(x))
// reproduces every bit), and the merger replays the single-process
// reduction order — so the merged SweepOutcome, and any report derived
// from it, is byte-identical to the single-process run at any worker
// count, any shard count, and across any crash/retry/re-dispatch
// schedule.
//
// Fault injection for tests/CI: when SILENCE_FABRIC_CRASH_SHARD=<index>
// is set, the worker running that shard aborts mid-shard (after half its
// slots) on its first attempt; when SILENCE_FABRIC_HANG_SHARD=<index> is
// set, that shard's first attempt sleeps forever instead, so a run with
// --fabric-timeout exercises the straggler-kill + re-dispatch path. The
// supervisor exports SILENCE_FABRIC_ATTEMPT=<n> to every child, so the
// retry — attempt 1 — runs to completion and must reproduce the
// uninjected bytes.
#pragma once

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "fabric/process.h"
#include "fabric/shard.h"
#include "fabric/supervisor.h"
#include "fabric/telemetry.h"
#include "fabric/transport.h"
#include "obs/health/health.h"
#include "obs/obs.h"
#include "runner/sinks.h"
#include "runner/sweep.h"

namespace silence::fabric {

struct FabricConfig {
  // Supervisor side.
  int workers = 0;       // > 1 enables the process fabric
  int shard_count = 0;   // shards per sweep; 0 = one per worker
  std::string spool_dir; // artifact spool; "" = per-run temp directory
  std::string self;      // executable to re-exec as a worker
  // Flags every worker needs to rebuild the identical grid
  // (--seed/--trials/--threads; built by bench::fabric_config).
  std::vector<std::string> passthrough_args;
  SupervisorOptions supervisor;
  // Worker side.
  std::optional<ShardSpec> shard;  // set => this process runs one shard
  std::string shard_out;           // where the artifact must land
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config) : config_(std::move(config)) {
    if (config_.shard && config_.shard_out.empty()) {
      throw std::invalid_argument("fabric: --shard-spec requires --shard-out");
    }
    if (fabric_mode() && config_.spool_dir.empty()) {
      config_.spool_dir =
          (std::filesystem::temp_directory_path() /
           ("silence-fabric-" + std::to_string(::getpid())))
              .string();
    }
  }

  bool worker_mode() const { return config_.shard.has_value(); }
  bool fabric_mode() const { return !worker_mode() && config_.workers > 1; }
  const FabricConfig& config() const { return config_; }

  // Worker epilogue: 0 once the process's shard ran and its artifact is
  // on disk; 2 (with a diagnostic) if the spec named a sweep this binary
  // never ran — the supervisor treats that exit as a shard failure.
  int finish_worker() const {
    if (!worker_mode()) return 0;
    if (!worker_satisfied_) {
      std::fprintf(stderr,
                   "fabric: shard spec '%s' matched no sweep in this bench\n",
                   config_.shard->to_string().c_str());
      return 2;
    }
    return 0;
  }

  // run_sweep with pluggable shard transport. `encode`/`decode` form the
  // Result codec (decode(encode(r)) must reproduce r bit-exactly);
  // `merge` has run_sweep's contract. In worker mode a call whose
  // `sweep` does not match the shard spec returns immediately with
  // default-constructed point results, so a bench with several sweeps
  // only computes the one its shard names.
  template <typename Point, typename TrialFn, typename EncodeFn,
            typename DecodeFn, typename MergeFn>
  auto run(const std::string& sweep, const runner::SweepGrid<Point>& grid,
           const runner::RunnerOptions& options, TrialFn&& trial,
           EncodeFn&& encode, DecodeFn&& decode, MergeFn&& merge)
      -> runner::SweepOutcome<std::invoke_result_t<
          TrialFn&, const Point&, const runner::TrialContext&>> {
    using Result = std::invoke_result_t<TrialFn&, const Point&,
                                        const runner::TrialContext&>;
    if (worker_mode()) {
      if (config_.shard->sweep != sweep) {
        runner::SweepOutcome<Result> outcome;
        outcome.point_results.resize(grid.points.size());
        return outcome;
      }
      return run_worker(grid, options, std::forward<TrialFn>(trial),
                        std::forward<EncodeFn>(encode));
    }
    if (!fabric_mode()) {
      return runner::run_sweep(grid, options, std::forward<TrialFn>(trial),
                               std::forward<MergeFn>(merge));
    }
    return run_supervisor<Result>(sweep, grid, std::forward<DecodeFn>(decode),
                                  std::forward<MergeFn>(merge));
  }

  // Overload merging with `into += part` (ErrorStats and friends).
  template <typename Point, typename TrialFn, typename EncodeFn,
            typename DecodeFn>
  auto run(const std::string& sweep, const runner::SweepGrid<Point>& grid,
           const runner::RunnerOptions& options, TrialFn&& trial,
           EncodeFn&& encode, DecodeFn&& decode) {
    return run(sweep, grid, options, std::forward<TrialFn>(trial),
               std::forward<EncodeFn>(encode), std::forward<DecodeFn>(decode),
               [](auto& into, auto&& part) { into += part; });
  }

  // Writes the bench's sidecars next to `json_path`: the `.metrics.json`
  // sidecar as the deterministic merge of every worker's shard sidecar
  // plus this (supervisor) process's own registry snapshot — so fabric
  // runs report the same counter totals a single-process run would —
  // and, when the supervisor drove any shards, the `.telemetry.json`
  // shard-lifecycle log. No-op when there is nothing to write.
  void write_sidecars(const std::string& json_path) const {
    std::vector<runner::Json> docs = worker_metrics_;
    const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
    if (!snapshot.empty()) docs.push_back(runner::metrics_json(snapshot));
    if (!docs.empty()) {
      runner::write_json_file(runner::metrics_sidecar_path(json_path),
                              runner::merge_metrics_json(docs));
    }
    if (!telemetry_.empty()) {
      runner::write_json_file(runner::telemetry_sidecar_path(json_path),
                              telemetry_.to_json());
    }
    // Health sidecar, same shard-merge discipline as the metrics one.
    // Every merged quantity is an integer sum, so the fabric file is
    // byte-identical to the single-process run's.
    std::vector<runner::Json> health_docs = worker_health_;
    const obs::health::HealthSnapshot health =
        obs::health::Registry::global().snapshot();
    if (!health.empty()) {
      health_docs.push_back(obs::health::health_json(health));
    }
    if (!health_docs.empty()) {
      runner::write_json_file(runner::health_sidecar_path(json_path),
                              obs::health::merge_health_json(health_docs));
    }
  }

  const Telemetry& telemetry() const { return telemetry_; }

 private:
  // True when this worker must die mid-shard (test/CI fault injection).
  // Only ever fires on attempt 0 — the supervisor stamps every child
  // with SILENCE_FABRIC_ATTEMPT, so the retry completes.
  static bool crash_injected(std::size_t shard_index) {
    const char* target = std::getenv("SILENCE_FABRIC_CRASH_SHARD");
    if (target == nullptr) return false;
    const char* attempt = std::getenv("SILENCE_FABRIC_ATTEMPT");
    if (attempt != nullptr && std::strtol(attempt, nullptr, 10) > 0) {
      return false;
    }
    return std::strtoull(target, nullptr, 10) == shard_index;
  }

  // True when this worker must hang (straggler injection). Same attempt-0
  // rule as crash_injected; the supervisor's timeout reaps the sleeper.
  static bool hang_injected(std::size_t shard_index) {
    const char* target = std::getenv("SILENCE_FABRIC_HANG_SHARD");
    if (target == nullptr) return false;
    const char* attempt = std::getenv("SILENCE_FABRIC_ATTEMPT");
    if (attempt != nullptr && std::strtol(attempt, nullptr, 10) > 0) {
      return false;
    }
    return std::strtoull(target, nullptr, 10) == shard_index;
  }

  template <typename Point, typename TrialFn, typename EncodeFn>
  auto run_worker(const runner::SweepGrid<Point>& grid,
                  const runner::RunnerOptions& options, TrialFn&& trial,
                  EncodeFn&& encode) {
    using Result = std::invoke_result_t<TrialFn&, const Point&,
                                        const runner::TrialContext&>;
    const ShardSpec& spec = *config_.shard;
    const std::size_t trials = grid.trials == 0 ? 1 : grid.trials;
    const std::size_t total = grid.points.size() * trials;
    if (spec.end > total) {
      throw std::runtime_error("fabric: shard " + spec.to_string() +
                               " exceeds the grid's " + std::to_string(total) +
                               " slots");
    }

    if (hang_injected(spec.index)) {
      std::fprintf(stderr,
                   "fabric: SILENCE_FABRIC_HANG_SHARD=%zu — sleeping as an "
                   "injected straggler\n",
                   spec.index);
      std::this_thread::sleep_for(std::chrono::seconds(600));
    }

    runner::SweepOutcome<Result> outcome;
    outcome.threads = runner::resolve_threads(options.threads);
    const bool crash = crash_injected(spec.index);
    // A crashing worker gets through half its slots, then dies without
    // committing an artifact — the supervisor sees a mid-shard loss.
    const std::size_t limit = crash ? spec.slots() / 2 : spec.slots();
    std::vector<Result> slots(spec.slots());
    runner::parallel_for(limit, outcome.threads, options.chunk,
                         [&](std::size_t i) {
                           OBS_SPAN("runner.trial");
                           const std::size_t slot = spec.begin + i;
                           runner::TrialContext ctx;
                           ctx.point_index = slot / trials;
                           ctx.trial_index = slot % trials;
                           ctx.seed = runner::trial_seed(
                               grid.base_seed, ctx.point_index,
                               ctx.trial_index);
                           slots[i] = trial(grid.points[ctx.point_index], ctx);
                         });
    if (crash) {
      std::fprintf(stderr,
                   "fabric: SILENCE_FABRIC_CRASH_SHARD=%zu — aborting "
                   "mid-shard after %zu/%zu slots\n",
                   spec.index, limit, spec.slots());
      std::_Exit(42);
    }
    OBS_COUNT_N("runner.trials", spec.slots());

    runner::Json encoded = runner::Json::array();
    for (const Result& result : slots) encoded.push_back(encode(result));
    // Sidecar first, artifact rename last: the artifact is the commit
    // point, so a validated shard always has its metrics alongside.
    const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
    if (!snapshot.empty()) {
      runner::write_json_file(runner::metrics_sidecar_path(config_.shard_out),
                              runner::metrics_json(snapshot));
    }
    const obs::health::HealthSnapshot health =
        obs::health::Registry::global().snapshot();
    if (!health.empty()) {
      runner::write_json_file(runner::health_sidecar_path(config_.shard_out),
                              obs::health::health_json(health));
    }
    write_shard_artifact(
        config_.shard_out,
        make_shard_artifact(spec, grid.base_seed, grid.points.size(), trials,
                            std::move(encoded)));
    worker_satisfied_ = true;
    outcome.trials_run = spec.slots();
    outcome.point_results.resize(grid.points.size());
    return outcome;
  }

  template <typename Result, typename Point, typename DecodeFn,
            typename MergeFn>
  runner::SweepOutcome<Result> run_supervisor(
      const std::string& sweep, const runner::SweepGrid<Point>& grid,
      DecodeFn&& decode, MergeFn&& merge) {
    const std::size_t trials = grid.trials == 0 ? 1 : grid.trials;
    const std::size_t total = grid.points.size() * trials;
    const std::size_t shard_count = static_cast<std::size_t>(
        config_.shard_count > 0 ? config_.shard_count : config_.workers);

    runner::SweepOutcome<Result> outcome;
    outcome.threads = config_.workers;  // processes; timing sidecar only
    outcome.trials_run = total;
    const auto start = std::chrono::steady_clock::now();

    const std::vector<ShardSpec> plan =
        plan_shards(sweep, total, shard_count);
    std::filesystem::create_directories(config_.spool_dir);
    SupervisorOptions sup = config_.supervisor;
    sup.max_workers = config_.workers;
    const auto command_for = [&](const ShardSpec& spec,
                                 const std::string& artifact_path) {
      std::vector<std::string> argv{config_.self};
      argv.insert(argv.end(), config_.passthrough_args.begin(),
                  config_.passthrough_args.end());
      argv.push_back("--shard-spec");
      argv.push_back(spec.to_string());
      argv.push_back("--shard-out");
      argv.push_back(artifact_path);
      return argv;
    };
    telemetry_.set_workers(config_.workers);
    const std::vector<runner::Json> artifacts =
        run_shards(plan, config_.spool_dir, grid.base_seed,
                   grid.points.size(), trials, command_for, sup,
                   &telemetry_);

    for (const ShardSpec& spec : plan) {
      const std::string artifact =
          shard_artifact_path(config_.spool_dir, spec);
      const std::string sidecar = runner::metrics_sidecar_path(artifact);
      if (std::filesystem::exists(sidecar)) {
        worker_metrics_.push_back(runner::read_json_file(sidecar));
      }
      const std::string health = runner::health_sidecar_path(artifact);
      if (std::filesystem::exists(health)) {
        worker_health_.push_back(runner::read_json_file(health));
      }
    }

    std::vector<Result> slots(total);
    for (std::size_t s = 0; s < plan.size(); ++s) {
      const runner::Json::Array& encoded =
          artifacts[s].find("slots")->as_array();
      for (std::size_t i = 0; i < encoded.size(); ++i) {
        slots[plan[s].begin + i] = decode(encoded[i]);
      }
    }

    // The exact reduction order of runner::run_sweep — point by point,
    // trial by trial — so non-associative merges (double sums) come out
    // bit-identical to the single-process run.
    outcome.point_results.reserve(grid.points.size());
    for (std::size_t p = 0; p < grid.points.size(); ++p) {
      Result merged = std::move(slots[p * trials]);
      for (std::size_t t = 1; t < trials; ++t) {
        merge(merged, std::move(slots[p * trials + t]));
      }
      outcome.point_results.push_back(std::move(merged));
    }
    outcome.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return outcome;
  }

  FabricConfig config_;
  bool worker_satisfied_ = false;
  std::vector<runner::Json> worker_metrics_;
  std::vector<runner::Json> worker_health_;
  Telemetry telemetry_;
};

}  // namespace silence::fabric
