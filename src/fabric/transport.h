// Shard-result transport: self-contained JSON artifacts moved through a
// spool directory.
//
// A worker writes exactly one artifact per shard. The file carries its
// own coordinates (sweep name, shard index/count, slot range), the grid
// identity (base_seed, points, trials) and a digest of the payload, so
// the supervisor can verify — before merging anything — that the bytes
// on disk are the complete result of the shard it asked for. Writes are
// atomic (tmp file + rename), so a crashed or killed worker can never
// leave a half-written artifact where the supervisor would read it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fabric/shard.h"
#include "runner/json.h"

namespace silence::fabric {

inline constexpr int kFabricSchemaVersion = 1;

// FNV-1a 64-bit over `text` — the artifact payload digest. Chosen for
// being trivially portable and dependency-free; this is a transport
// integrity check, not a cryptographic one.
std::uint64_t fnv1a64(std::string_view text);

// 16-hex-digit form of the digest (zero padded, lowercase).
std::string digest_hex(std::uint64_t digest);

// `<spool_dir>/<sweep>.shard<index>.json`.
std::string shard_artifact_path(const std::string& spool_dir,
                                const ShardSpec& spec);

// Assembles a shard artifact: header (schema, sweep, shard coordinates,
// base_seed as the int64 bit-cast of the u64 seed, points, trials), the
// digest of `slots` (FNV-1a over its compact dump), then the slots
// array itself — one encoded result per linear slot in [begin, end).
runner::Json make_shard_artifact(const ShardSpec& spec,
                                 std::uint64_t base_seed, std::size_t points,
                                 std::size_t trials, runner::Json slots);

// Writes `artifact` to `path` atomically: serialize to `<path>.tmp`,
// then rename over `path`. Creates parent directories.
void write_shard_artifact(const std::string& path,
                          const runner::Json& artifact);

// Reads and structurally validates a shard artifact against the shard
// the supervisor expects: schema version, sweep name, shard coordinates,
// grid identity, slot count == spec.slots(), and the payload digest.
// Throws std::runtime_error naming the first mismatch.
runner::Json read_shard_artifact(const std::string& path,
                                 const ShardSpec& spec,
                                 std::uint64_t base_seed, std::size_t points,
                                 std::size_t trials);

}  // namespace silence::fabric
