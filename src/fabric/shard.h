// Deterministic shard planning for the multi-process sweep fabric.
//
// A sweep's (point x trial) space is a linear slot space of size
// points * trials, where slot i maps to (point = i / trials,
// trial = i % trials) — exactly the indexing runner::run_sweep uses.
// plan_shards() splits [0, total) into contiguous slot ranges, one per
// shard, so a shard is always a contiguous (point, trial-range) block.
// Because every slot's RNG seed is a pure function of its coordinates
// (runner/seed.h), any shard re-run — on another process, another
// machine, or after a crash — reproduces its slot results bit-exactly.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace silence::fabric {

// One shard of one named sweep: slots [begin, end) of the linear
// (point x trial) space, shard `index` of `count` total.
struct ShardSpec {
  std::string sweep;      // sweep name, e.g. "fig10_detection.b"
  std::size_t index = 0;  // shard number, 0-based
  std::size_t count = 1;  // total shards in the plan
  std::size_t begin = 0;  // first linear slot (inclusive)
  std::size_t end = 0;    // past-the-last linear slot

  std::size_t slots() const { return end - begin; }

  // Compact CLI form: "<sweep>:<index>/<count>:<begin>-<end>".
  // parse(to_string(s)) == s; parse throws std::invalid_argument on any
  // malformed input (the supervisor/worker handshake must be exact).
  std::string to_string() const;
  static ShardSpec parse(std::string_view text);

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

// Splits `total_slots` into `shard_count` contiguous shards (clamped to
// [1, total_slots] so no shard is empty). Slot counts differ by at most
// one and earlier shards take the remainder, so the plan is a pure
// function of (total_slots, shard_count).
std::vector<ShardSpec> plan_shards(std::string_view sweep,
                                   std::size_t total_slots,
                                   std::size_t shard_count);

}  // namespace silence::fabric
