#include "fabric/transport.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "runner/sinks.h"

namespace silence::fabric {

namespace {

const runner::Json& require(const runner::Json& json, std::string_view key,
                            const std::string& path) {
  const runner::Json* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error("shard artifact " + path + ": missing field '" +
                             std::string(key) + "'");
  }
  return *value;
}

void check(bool ok, const std::string& path, const std::string& what) {
  if (!ok) {
    throw std::runtime_error("shard artifact " + path + ": " + what);
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string shard_artifact_path(const std::string& spool_dir,
                                const ShardSpec& spec) {
  return spool_dir + "/" + spec.sweep + ".shard" +
         std::to_string(spec.index) + ".json";
}

runner::Json make_shard_artifact(const ShardSpec& spec,
                                 std::uint64_t base_seed, std::size_t points,
                                 std::size_t trials, runner::Json slots) {
  runner::Json artifact = runner::Json::object();
  artifact.set("fabric_schema", kFabricSchemaVersion);
  artifact.set("sweep", spec.sweep);
  runner::Json shard = runner::Json::object();
  shard.set("index", static_cast<std::int64_t>(spec.index));
  shard.set("count", static_cast<std::int64_t>(spec.count));
  shard.set("begin", static_cast<std::int64_t>(spec.begin));
  shard.set("end", static_cast<std::int64_t>(spec.end));
  artifact.set("shard", std::move(shard));
  // u64 seeds ride as their int64 bit pattern — the cast round-trips
  // exactly (tests/runner/json_test.cpp pins this).
  artifact.set("base_seed", static_cast<std::int64_t>(base_seed));
  artifact.set("points", static_cast<std::int64_t>(points));
  artifact.set("trials", static_cast<std::int64_t>(trials));
  artifact.set("digest", digest_hex(fnv1a64(slots.dump_compact())));
  artifact.set("slots", std::move(slots));
  return artifact;
}

void write_shard_artifact(const std::string& path,
                          const runner::Json& artifact) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  const std::filesystem::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_shard_artifact: cannot open " +
                               tmp.string());
    }
    out << artifact.dump();
    out.flush();
    if (!out) {
      throw std::runtime_error("write_shard_artifact: write failed on " +
                               tmp.string());
    }
  }
  std::filesystem::rename(tmp, target);  // the commit point
}

runner::Json read_shard_artifact(const std::string& path,
                                 const ShardSpec& spec,
                                 std::uint64_t base_seed, std::size_t points,
                                 std::size_t trials) {
  runner::Json artifact = runner::read_json_file(path);
  check(require(artifact, "fabric_schema", path).as_int() ==
            kFabricSchemaVersion,
        path, "unsupported fabric_schema");
  check(require(artifact, "sweep", path).as_string() == spec.sweep, path,
        "sweep name mismatch (expected '" + spec.sweep + "')");

  const runner::Json& shard = require(artifact, "shard", path);
  check(static_cast<std::size_t>(require(shard, "index", path).as_int()) ==
                spec.index &&
            static_cast<std::size_t>(require(shard, "count", path).as_int()) ==
                spec.count &&
            static_cast<std::size_t>(require(shard, "begin", path).as_int()) ==
                spec.begin &&
            static_cast<std::size_t>(require(shard, "end", path).as_int()) ==
                spec.end,
        path, "shard coordinates mismatch (expected " + spec.to_string() + ")");

  check(static_cast<std::uint64_t>(
            require(artifact, "base_seed", path).as_int()) == base_seed,
        path, "base_seed mismatch");
  check(static_cast<std::size_t>(require(artifact, "points", path).as_int()) ==
            points,
        path, "grid point count mismatch");
  check(static_cast<std::size_t>(require(artifact, "trials", path).as_int()) ==
            trials,
        path, "grid trial count mismatch");

  const runner::Json& slots = require(artifact, "slots", path);
  check(slots.is_array(), path, "slots is not an array");
  check(slots.size() == spec.slots(), path,
        "slot count mismatch (" + std::to_string(slots.size()) + " vs " +
            std::to_string(spec.slots()) + " expected)");
  check(require(artifact, "digest", path).as_string() ==
            digest_hex(fnv1a64(slots.dump_compact())),
        path, "payload digest mismatch");
  return artifact;
}

}  // namespace silence::fabric
