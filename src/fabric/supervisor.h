// Fault-tolerant shard supervision: spawn local worker processes, keep
// at most `max_workers` in flight, and guarantee that every shard either
// produces a validated artifact or the whole run fails loudly.
//
// Failure handling leans on the determinism contract: a shard's result
// is a pure function of (sweep, base_seed, slot range), so a worker that
// crashes, hangs past its timeout (straggler), or writes a corrupt
// artifact can simply be re-dispatched — the retry reproduces the exact
// bytes the first attempt would have produced. Retries are bounded
// (`max_attempts`) with exponential backoff, and a shard that exhausts
// them throws, naming the shard and the last failure.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fabric/shard.h"
#include "fabric/telemetry.h"
#include "runner/json.h"

namespace silence::fabric {

struct SupervisorOptions {
  int max_workers = 2;           // worker processes in flight at once
  double timeout_seconds = 0.0;  // per attempt; 0 disables the timeout
  int max_attempts = 3;          // 1 initial run + (max_attempts-1) retries
  double backoff_seconds = 0.25; // doubles per retry of the same shard
};

// Builds the worker argv for one shard; `artifact_path` is where the
// worker must write its result (passed as --shard-out by the callers in
// bench_util.h).
using ShardCommandFn = std::function<std::vector<std::string>(
    const ShardSpec&, const std::string& artifact_path)>;

// Runs every shard of `plan` through a worker process and returns the
// validated artifacts in shard order. `base_seed`/`points`/`trials`
// identify the grid the artifacts must match. Each spawn exports
// SILENCE_FABRIC_ATTEMPT=<attempt> to the child (the crash-injection
// hook keys off it; see fabric.h). Throws std::runtime_error when a
// shard exhausts its attempts. When `telemetry` is non-null every
// lifecycle transition (dispatch, complete, failure, straggler kill,
// retry) is recorded with its attempt duration.
std::vector<runner::Json> run_shards(const std::vector<ShardSpec>& plan,
                                     const std::string& spool_dir,
                                     std::uint64_t base_seed,
                                     std::size_t points, std::size_t trials,
                                     const ShardCommandFn& command_for,
                                     const SupervisorOptions& options,
                                     Telemetry* telemetry = nullptr);

}  // namespace silence::fabric
