#include "fabric/supervisor.h"

#include <chrono>
#include <cstdio>
#include <deque>
#include <optional>
#include <stdexcept>
#include <thread>

#include "fabric/process.h"
#include "fabric/transport.h"
#include "obs/obs.h"

namespace silence::fabric {

namespace {

using Clock = std::chrono::steady_clock;

struct PendingShard {
  std::size_t plan_index = 0;
  int attempts = 0;             // completed (failed) attempts so far
  Clock::time_point eligible;   // earliest next launch (backoff)
};

struct RunningShard {
  std::size_t plan_index = 0;
  int attempts = 0;             // attempts BEFORE this one
  pid_t pid = -1;
  Clock::time_point launched;
  Clock::time_point deadline;   // meaningful only when timeout is on
  std::string artifact_path;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::vector<runner::Json> run_shards(const std::vector<ShardSpec>& plan,
                                     const std::string& spool_dir,
                                     std::uint64_t base_seed,
                                     std::size_t points, std::size_t trials,
                                     const ShardCommandFn& command_for,
                                     const SupervisorOptions& options,
                                     Telemetry* telemetry) {
  std::vector<runner::Json> artifacts(plan.size());
  if (plan.empty()) return artifacts;
  const int max_workers = options.max_workers > 0 ? options.max_workers : 1;
  const int max_attempts = options.max_attempts > 0 ? options.max_attempts : 1;

  OBS_COUNT_N("fabric.shards", plan.size());
  if (telemetry != nullptr) telemetry->add_shards(plan.size());

  std::deque<PendingShard> pending;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    pending.push_back({i, 0, Clock::now()});
  }
  std::vector<RunningShard> running;
  std::size_t completed = 0;

  // A failed attempt either requeues the shard with backoff or, once
  // attempts are exhausted, aborts the whole run (after killing any
  // in-flight workers so nothing leaks).
  const auto handle_failure = [&](std::size_t plan_index, int prior_attempts,
                                  const std::string& why) {
    const int attempts = prior_attempts + 1;
    if (attempts >= max_attempts) {
      for (const RunningShard& r : running) kill_process(r.pid);
      throw std::runtime_error("fabric: shard " +
                               plan[plan_index].to_string() + " failed after " +
                               std::to_string(attempts) + " attempt(s): " +
                               why);
    }
    OBS_COUNT("fabric.retries");
    const double backoff =
        options.backoff_seconds * static_cast<double>(1 << prior_attempts);
    if (telemetry != nullptr) {
      telemetry->record(Telemetry::kRetry, plan[plan_index].to_string(),
                        attempts, backoff, why);
    }
    std::fprintf(stderr, "fabric: retrying shard %s (%s), backoff %.2fs\n",
                 plan[plan_index].to_string().c_str(), why.c_str(), backoff);
    pending.push_back({plan_index, attempts,
                       Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(
                                              backoff))});
  };

  while (completed < plan.size()) {
    bool progressed = false;

    // Launch while there is capacity and an eligible shard.
    while (static_cast<int>(running.size()) < max_workers && !pending.empty()) {
      // Pick the first eligible entry (backoff may hold some back).
      std::optional<std::size_t> pick;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].eligible <= Clock::now()) {
          pick = i;
          break;
        }
      }
      if (!pick) break;
      const PendingShard job = pending[*pick];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(*pick));

      const ShardSpec& spec = plan[job.plan_index];
      RunningShard run;
      run.plan_index = job.plan_index;
      run.attempts = job.attempts;
      run.artifact_path = shard_artifact_path(spool_dir, spec);
      run.pid = spawn_process(
          command_for(spec, run.artifact_path),
          {"SILENCE_FABRIC_ATTEMPT=" + std::to_string(job.attempts)});
      run.launched = Clock::now();
      if (telemetry != nullptr) {
        telemetry->record(Telemetry::kDispatch, spec.to_string(),
                          job.attempts);
      }
      run.deadline = Clock::now() +
                     std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options.timeout_seconds > 0.0
                                 ? options.timeout_seconds
                                 : 0.0));
      running.push_back(std::move(run));
      progressed = true;
    }

    // Reap exits and enforce timeouts.
    for (std::size_t i = 0; i < running.size();) {
      RunningShard& run = running[i];
      const std::optional<ExitStatus> status = poll_process(run.pid);
      if (!status) {
        if (options.timeout_seconds > 0.0 && Clock::now() >= run.deadline) {
          OBS_COUNT("fabric.timeouts");
          kill_process(run.pid);
          const auto plan_index = run.plan_index;
          const auto attempts = run.attempts;
          if (telemetry != nullptr) {
            telemetry->record(Telemetry::kStragglerKill,
                              plan[plan_index].to_string(), attempts,
                              seconds_since(run.launched),
                              "timed out (straggler killed)");
          }
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
          handle_failure(plan_index, attempts, "timed out (straggler killed)");
          progressed = true;
          continue;
        }
        ++i;
        continue;
      }

      const RunningShard done = std::move(run);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      progressed = true;
      const double attempt_seconds = seconds_since(done.launched);
      if (!status->ok()) {
        OBS_COUNT("fabric.worker_failures");
        if (telemetry != nullptr) {
          telemetry->record(Telemetry::kWorkerFailure,
                            plan[done.plan_index].to_string(), done.attempts,
                            attempt_seconds, status->describe());
        }
        handle_failure(done.plan_index, done.attempts,
                       "worker " + status->describe());
        continue;
      }
      try {
        artifacts[done.plan_index] =
            read_shard_artifact(done.artifact_path, plan[done.plan_index],
                                base_seed, points, trials);
        ++completed;
        if (telemetry != nullptr) {
          telemetry->record(Telemetry::kComplete,
                            plan[done.plan_index].to_string(), done.attempts,
                            attempt_seconds);
        }
      } catch (const std::exception& e) {
        OBS_COUNT("fabric.artifact_rejects");
        if (telemetry != nullptr) {
          telemetry->record(Telemetry::kArtifactReject,
                            plan[done.plan_index].to_string(), done.attempts,
                            attempt_seconds, e.what());
        }
        handle_failure(done.plan_index, done.attempts, e.what());
      }
    }

    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return artifacts;
}

}  // namespace silence::fabric
