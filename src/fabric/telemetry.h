// Structured supervisor telemetry: every shard-lifecycle transition the
// supervisor drives — dispatch, completion, worker failure, artifact
// reject, straggler kill, retry — recorded with its wall-clock offset,
// attempt number and duration, and rendered as one self-contained JSON
// document (the `.telemetry.json` sidecar next to a bench's result).
//
// This is fleet observability, not result data: timings are wall clock
// and differ run to run, which is why telemetry only ever lands in a
// sidecar — the sweep artifacts and the merged result JSON stay
// byte-identical at any worker/shard count.
//
// Single-threaded by design: run_shards polls workers from one thread,
// so recording needs no locking.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "runner/json.h"

namespace silence::fabric {

class Telemetry {
 public:
  // Event kinds, as they appear in the JSON "kind" field.
  static constexpr const char* kDispatch = "dispatch";
  static constexpr const char* kComplete = "complete";
  static constexpr const char* kWorkerFailure = "worker_failure";
  static constexpr const char* kArtifactReject = "artifact_reject";
  static constexpr const char* kStragglerKill = "straggler_kill";
  static constexpr const char* kRetry = "retry";

  Telemetry() : t0_(std::chrono::steady_clock::now()) {}

  // Fleet shape: worker-pool size and total shard count. A bench with
  // several sweeps accumulates shards across its run_shards calls.
  void set_workers(int workers) { workers_ = workers; }
  void add_shards(std::size_t shards) { shards_ += shards; }

  // Records one event. `attempt` is the 0-based attempt the event refers
  // to; `seconds` is the attempt's duration (or the retry's backoff
  // delay); `detail` carries the exit status / rejection reason.
  void record(const char* kind, const std::string& shard, int attempt,
              double seconds = 0.0, const std::string& detail = "");

  bool empty() const { return events_.empty(); }
  std::size_t count(const char* kind) const;

  // The telemetry document; wall_seconds measures construction → call.
  runner::Json to_json() const;

 private:
  struct Event {
    double t = 0.0;  // seconds since telemetry start
    const char* kind;
    std::string shard;
    int attempt = 0;
    double seconds = 0.0;
    std::string detail;
  };

  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

  std::chrono::steady_clock::time_point t0_;
  int workers_ = 0;
  std::size_t shards_ = 0;
  std::vector<Event> events_;
};

}  // namespace silence::fabric
