// Minimal child-process management for the fabric supervisor and the
// campaign driver: spawn an argv with extra environment variables, poll
// or block for exit, kill a straggler. Linux-only (fork/execve), which
// is the only platform this repo targets.
#pragma once

#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace silence::fabric {

// How a child ended. `exited` distinguishes a normal exit (code holds
// the exit status) from death by signal (code holds the signal number).
struct ExitStatus {
  bool exited = false;
  int code = 0;

  bool ok() const { return exited && code == 0; }
  std::string describe() const;
};

// The path of the currently running executable (/proc/self/exe), for
// re-exec'ing the current binary as a shard worker. Falls back to
// `fallback` (typically argv[0]) if the proc link cannot be read.
std::string self_executable_path(const std::string& fallback);

// Spawns `argv` (argv[0] is the executable path) with the parent's
// environment plus `extra_env` ("KEY=VALUE" entries override inherited
// ones). Returns the child pid; throws std::runtime_error if the fork
// fails. An exec failure inside the child surfaces as exit code 127.
pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::vector<std::string>& extra_env);

// Non-blocking reap: the child's status if it has exited, std::nullopt
// while it is still running.
std::optional<ExitStatus> poll_process(pid_t pid);

// Blocking reap.
ExitStatus wait_process(pid_t pid);

// SIGKILLs the child and reaps it (used for shard timeouts).
ExitStatus kill_process(pid_t pid);

}  // namespace silence::fabric
