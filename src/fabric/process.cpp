#include "fabric/process.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;

namespace silence::fabric {

namespace {

// "KEY=VALUE" -> "KEY=". Used to drop inherited entries that extra_env
// overrides, so the child sees exactly one value per key.
std::string_view env_key(std::string_view entry) {
  const std::size_t eq = entry.find('=');
  return entry.substr(0, eq == std::string_view::npos ? entry.size() : eq + 1);
}

ExitStatus status_from_wait(int wait_status) {
  ExitStatus status;
  if (WIFEXITED(wait_status)) {
    status.exited = true;
    status.code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    status.exited = false;
    status.code = WTERMSIG(wait_status);
  }
  return status;
}

}  // namespace

std::string ExitStatus::describe() const {
  if (exited) return "exit code " + std::to_string(code);
  return "signal " + std::to_string(code);
}

std::string self_executable_path(const std::string& fallback) {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec && !self.empty()) return self.string();
  return fallback;
}

pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::vector<std::string>& extra_env) {
  if (argv.empty()) throw std::runtime_error("spawn_process: empty argv");

  // Build argv/envp arrays BEFORE forking — only async-signal-safe calls
  // are allowed between fork and exec.
  std::vector<char*> argv_ptrs;
  argv_ptrs.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    argv_ptrs.push_back(const_cast<char*>(arg.c_str()));
  }
  argv_ptrs.push_back(nullptr);

  std::vector<std::string> env_storage;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry(*e);
    bool overridden = false;
    for (const std::string& extra : extra_env) {
      if (env_key(entry) == env_key(extra)) {
        overridden = true;
        break;
      }
    }
    if (!overridden) env_storage.emplace_back(entry);
  }
  for (const std::string& extra : extra_env) env_storage.push_back(extra);
  std::vector<char*> env_ptrs;
  env_ptrs.reserve(env_storage.size() + 1);
  for (const std::string& entry : env_storage) {
    env_ptrs.push_back(const_cast<char*>(entry.c_str()));
  }
  env_ptrs.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("spawn_process: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    ::execve(argv_ptrs[0], argv_ptrs.data(), env_ptrs.data());
    // Exec failed; 127 is the shell convention for "command not found".
    ::_exit(127);
  }
  return pid;
}

std::optional<ExitStatus> poll_process(pid_t pid) {
  int wait_status = 0;
  const pid_t reaped = ::waitpid(pid, &wait_status, WNOHANG);
  if (reaped == 0) return std::nullopt;
  if (reaped < 0) {
    throw std::runtime_error(std::string("poll_process: waitpid failed: ") +
                             std::strerror(errno));
  }
  return status_from_wait(wait_status);
}

ExitStatus wait_process(pid_t pid) {
  int wait_status = 0;
  for (;;) {
    const pid_t reaped = ::waitpid(pid, &wait_status, 0);
    if (reaped >= 0) break;
    if (errno != EINTR) {
      throw std::runtime_error(std::string("wait_process: waitpid failed: ") +
                               std::strerror(errno));
    }
  }
  return status_from_wait(wait_status);
}

ExitStatus kill_process(pid_t pid) {
  ::kill(pid, SIGKILL);
  return wait_process(pid);
}

}  // namespace silence::fabric
