#include "fabric/telemetry.h"

#include <algorithm>
#include <cstring>

namespace silence::fabric {

namespace {

// Exact quantile over the sorted sample list (linear interpolation
// between order statistics) — attempts are few, so no bucketing needed.
double quantile_of(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

void Telemetry::record(const char* kind, const std::string& shard,
                       int attempt, double seconds,
                       const std::string& detail) {
  events_.push_back({elapsed(), kind, shard, attempt, seconds, detail});
}

std::size_t Telemetry::count(const char* kind) const {
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (std::strcmp(e.kind, kind) == 0) ++n;
  }
  return n;
}

runner::Json Telemetry::to_json() const {
  runner::Json root = runner::Json::object();
  root.set("schema_version", static_cast<std::int64_t>(1));
  root.set("workers", static_cast<std::int64_t>(workers_));
  root.set("shards", static_cast<std::int64_t>(shards_));
  const double wall = elapsed();
  root.set("wall_seconds", wall);

  runner::Json events = runner::Json::array();
  // Attempt durations of every *finished* attempt (completed, failed,
  // rejected or killed) — the busy time the worker pool actually spent.
  std::vector<double> attempt_seconds;
  double busy = 0.0;
  for (const Event& e : events_) {
    runner::Json row = runner::Json::object();
    row.set("t", e.t);
    row.set("kind", std::string(e.kind));
    row.set("shard", e.shard);
    row.set("attempt", static_cast<std::int64_t>(e.attempt));
    row.set("seconds", e.seconds);
    if (!e.detail.empty()) row.set("detail", e.detail);
    events.push_back(std::move(row));
    if (std::strcmp(e.kind, kDispatch) != 0 &&
        std::strcmp(e.kind, kRetry) != 0) {
      attempt_seconds.push_back(e.seconds);
      busy += e.seconds;
    }
  }
  root.set("events", std::move(events));

  runner::Json summary = runner::Json::object();
  summary.set("dispatches", static_cast<std::int64_t>(count(kDispatch)));
  summary.set("completes", static_cast<std::int64_t>(count(kComplete)));
  summary.set("retries", static_cast<std::int64_t>(count(kRetry)));
  summary.set("straggler_kills",
              static_cast<std::int64_t>(count(kStragglerKill)));
  summary.set("worker_failures",
              static_cast<std::int64_t>(count(kWorkerFailure)));
  summary.set("artifact_rejects",
              static_cast<std::int64_t>(count(kArtifactReject)));
  summary.set("busy_seconds", busy);
  const double capacity = static_cast<double>(workers_) * wall;
  summary.set("worker_utilization", capacity > 0.0 ? busy / capacity : 0.0);

  std::sort(attempt_seconds.begin(), attempt_seconds.end());
  runner::Json quant = runner::Json::object();
  quant.set("count", static_cast<std::int64_t>(attempt_seconds.size()));
  quant.set("min", attempt_seconds.empty() ? 0.0 : attempt_seconds.front());
  quant.set("max", attempt_seconds.empty() ? 0.0 : attempt_seconds.back());
  quant.set("p50", quantile_of(attempt_seconds, 0.50));
  quant.set("p95", quantile_of(attempt_seconds, 0.95));
  quant.set("p99", quantile_of(attempt_seconds, 0.99));
  summary.set("attempt_seconds", std::move(quant));
  // Exact durations, so silence_campaign can re-merge quantiles across
  // sweeps instead of averaging averages.
  runner::Json list = runner::Json::array();
  for (const double s : attempt_seconds) list.push_back(s);
  summary.set("attempt_seconds_list", std::move(list));
  root.set("summary", std::move(summary));
  return root;
}

}  // namespace silence::fabric
