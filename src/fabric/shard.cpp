#include "fabric/shard.h"

#include <charconv>
#include <stdexcept>

namespace silence::fabric {

namespace {

[[noreturn]] void bad_spec(std::string_view text, const char* why) {
  throw std::invalid_argument("ShardSpec::parse: " + std::string(why) +
                              " in '" + std::string(text) + "'");
}

std::size_t parse_size(std::string_view text, std::string_view token,
                       const char* what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    bad_spec(text, what);
  }
  return value;
}

}  // namespace

std::string ShardSpec::to_string() const {
  return sweep + ":" + std::to_string(index) + "/" + std::to_string(count) +
         ":" + std::to_string(begin) + "-" + std::to_string(end);
}

ShardSpec ShardSpec::parse(std::string_view text) {
  // The sweep name may itself contain dots/underscores but never ':', so
  // split on the LAST two colons to be unambiguous.
  const std::size_t second_colon = text.rfind(':');
  if (second_colon == std::string_view::npos || second_colon == 0) {
    bad_spec(text, "missing ':' separators");
  }
  const std::size_t first_colon = text.rfind(':', second_colon - 1);
  if (first_colon == std::string_view::npos || first_colon == 0) {
    bad_spec(text, "missing sweep name");
  }

  ShardSpec spec;
  spec.sweep = std::string(text.substr(0, first_colon));
  const std::string_view shard_part =
      text.substr(first_colon + 1, second_colon - first_colon - 1);
  const std::string_view range_part = text.substr(second_colon + 1);

  const std::size_t slash = shard_part.find('/');
  if (slash == std::string_view::npos) bad_spec(text, "missing '/'");
  spec.index = parse_size(text, shard_part.substr(0, slash), "bad shard index");
  spec.count = parse_size(text, shard_part.substr(slash + 1), "bad shard count");

  const std::size_t dash = range_part.find('-');
  if (dash == std::string_view::npos) bad_spec(text, "missing '-'");
  spec.begin = parse_size(text, range_part.substr(0, dash), "bad slot begin");
  spec.end = parse_size(text, range_part.substr(dash + 1), "bad slot end");

  if (spec.count == 0) bad_spec(text, "zero shard count");
  if (spec.index >= spec.count) bad_spec(text, "shard index out of range");
  if (spec.begin >= spec.end) bad_spec(text, "empty slot range");
  return spec;
}

std::vector<ShardSpec> plan_shards(std::string_view sweep,
                                   std::size_t total_slots,
                                   std::size_t shard_count) {
  if (total_slots == 0) return {};
  if (shard_count == 0) shard_count = 1;
  if (shard_count > total_slots) shard_count = total_slots;

  const std::size_t base = total_slots / shard_count;
  const std::size_t remainder = total_slots % shard_count;
  std::vector<ShardSpec> plan;
  plan.reserve(shard_count);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < shard_count; ++i) {
    ShardSpec spec;
    spec.sweep = std::string(sweep);
    spec.index = i;
    spec.count = shard_count;
    spec.begin = cursor;
    cursor += base + (i < remainder ? 1 : 0);
    spec.end = cursor;
    plan.push_back(std::move(spec));
  }
  return plan;
}

}  // namespace silence::fabric
