// silence_campaign — runs a manifest of sweep benches end-to-end and
// aggregates their sidecars into one campaign dashboard JSON.
//
//   silence_campaign <manifest.json> [--workers N] [--dry-run]
//
// The manifest lists the sweeps of a campaign:
//
//   {
//     "campaign": "full_grid",
//     "output": "results/campaign.json",
//     "fabric_workers": 4,
//     "sweeps": [
//       {"name": "fig10_detection",
//        "command": ["build/bench/fig10_detection", "--trials", "200"],
//        "json": "results/fig10_detection.json"},
//       {"name": "net_scenarios",
//        "command": ["build/bench/net_scenarios"],
//        "json": "results/net_scenarios.json"}
//     ]
//   }
//
// Each sweep's command is spawned with `--json <json>` appended, plus
// `--fabric <N>` when fabric_workers > 1 — so every sweep runs through
// the sharded fabric (src/fabric/) with its fault-tolerant supervision,
// and each bench's .metrics.json sidecar already holds the merge of its
// shards' worker sidecars. A sweep that exits nonzero fails the whole
// campaign. Afterwards the dashboard aggregates across sweeps: counters
// summed, gauges maxed, histograms merged bucket-wise with p50/p95/p99
// recomputed from the combined buckets (runner::merge_metrics_json),
// plus per-sweep wall-clock/trial totals from the .timing.json sidecars
// and an exact integer merge of the .health.json PHY-health sidecars.
//
// Exit status: 0 = campaign complete and dashboard written; 1 = a sweep
// failed; 2 = usage/manifest error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/process.h"
#include "obs/health/health.h"
#include "runner/json.h"
#include "runner/sinks.h"

namespace {

using silence::runner::Json;

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <manifest.json> [--workers N] [--dry-run]\n"
               "  runs every sweep in the manifest (optionally through the\n"
               "  sweep fabric) and writes the aggregated campaign dashboard\n"
               "  to the manifest's `output` path\n"
               "  --workers N  override the manifest's fabric_workers\n"
               "  --dry-run    print the commands without running anything\n",
               argv0);
  return code;
}

const Json& require(const Json& json, const char* key) {
  const Json* value = json.find(key);
  if (value == nullptr) {
    throw std::runtime_error(std::string("manifest: missing field '") + key +
                             "'");
  }
  return *value;
}

struct SweepEntry {
  std::string name;
  std::vector<std::string> command;
  std::string json_path;
};

struct Manifest {
  std::string campaign;
  std::string output;
  int fabric_workers = 0;
  std::vector<SweepEntry> sweeps;
};

Manifest parse_manifest(const Json& root) {
  Manifest m;
  m.campaign = require(root, "campaign").as_string();
  m.output = require(root, "output").as_string();
  if (const Json* workers = root.find("fabric_workers")) {
    m.fabric_workers = static_cast<int>(workers->as_int());
  }
  const Json& sweeps = require(root, "sweeps");
  if (!sweeps.is_array() || sweeps.size() == 0) {
    throw std::runtime_error("manifest: 'sweeps' must be a non-empty array");
  }
  for (const Json& entry : sweeps.as_array()) {
    SweepEntry sweep;
    sweep.name = require(entry, "name").as_string();
    const Json& command = require(entry, "command");
    if (!command.is_array() || command.size() == 0) {
      throw std::runtime_error("manifest: sweep '" + sweep.name +
                               "' needs a non-empty 'command' array");
    }
    for (const Json& arg : command.as_array()) {
      sweep.command.push_back(arg.as_string());
    }
    sweep.json_path = require(entry, "json").as_string();
    m.sweeps.push_back(std::move(sweep));
  }
  return m;
}

std::string join(const std::vector<std::string>& argv) {
  std::string line;
  for (const std::string& arg : argv) {
    if (!line.empty()) line += ' ';
    line += arg;
  }
  return line;
}

// Exact quantile over a sorted sample list (linear interpolation between
// order statistics) — mirrors fabric::Telemetry, so the campaign-level
// attempt-duration quantiles are recomputed from the pooled samples
// instead of averaging per-sweep percentiles.
double quantile_of(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

// Rolls the per-sweep fabric .telemetry.json sidecars up into one
// campaign-level view: event counts summed, attempt durations pooled
// (quantiles recomputed), utilization weighted by each sweep's
// workers × wall capacity.
Json merge_fabric_telemetry(const std::vector<Json>& docs) {
  std::int64_t shards = 0, dispatches = 0, completes = 0, retries = 0;
  std::int64_t straggler_kills = 0, worker_failures = 0, artifact_rejects = 0;
  std::int64_t max_workers = 0;
  double wall = 0.0, busy = 0.0, capacity = 0.0;
  std::vector<double> attempt_seconds;
  const auto int_field = [](const Json& doc, const char* key) -> std::int64_t {
    const Json* v = doc.find(key);
    return v == nullptr ? 0 : v->as_int();
  };
  const auto dbl_field = [](const Json& doc, const char* key) -> double {
    const Json* v = doc.find(key);
    return v == nullptr ? 0.0 : v->as_double();
  };
  for (const Json& doc : docs) {
    const std::int64_t workers = int_field(doc, "workers");
    const double sweep_wall = dbl_field(doc, "wall_seconds");
    max_workers = std::max(max_workers, workers);
    shards += int_field(doc, "shards");
    wall += sweep_wall;
    capacity += static_cast<double>(workers) * sweep_wall;
    const Json* summary = doc.find("summary");
    if (summary == nullptr) continue;
    dispatches += int_field(*summary, "dispatches");
    completes += int_field(*summary, "completes");
    retries += int_field(*summary, "retries");
    straggler_kills += int_field(*summary, "straggler_kills");
    worker_failures += int_field(*summary, "worker_failures");
    artifact_rejects += int_field(*summary, "artifact_rejects");
    busy += dbl_field(*summary, "busy_seconds");
    if (const Json* list = summary->find("attempt_seconds_list")) {
      for (const Json& s : list->as_array()) {
        attempt_seconds.push_back(s.as_double());
      }
    }
  }
  std::sort(attempt_seconds.begin(), attempt_seconds.end());

  Json out = Json::object();
  out.set("sweeps", static_cast<std::int64_t>(docs.size()));
  out.set("workers", max_workers);
  out.set("shards", shards);
  out.set("wall_seconds", wall);
  out.set("dispatches", dispatches);
  out.set("completes", completes);
  out.set("retries", retries);
  out.set("straggler_kills", straggler_kills);
  out.set("worker_failures", worker_failures);
  out.set("artifact_rejects", artifact_rejects);
  out.set("busy_seconds", busy);
  out.set("worker_utilization", capacity > 0.0 ? busy / capacity : 0.0);
  Json quant = Json::object();
  quant.set("count", static_cast<std::int64_t>(attempt_seconds.size()));
  quant.set("min", attempt_seconds.empty() ? 0.0 : attempt_seconds.front());
  quant.set("max", attempt_seconds.empty() ? 0.0 : attempt_seconds.back());
  quant.set("p50", quantile_of(attempt_seconds, 0.50));
  quant.set("p95", quantile_of(attempt_seconds, 0.95));
  quant.set("p99", quantile_of(attempt_seconds, 0.99));
  out.set("attempt_seconds", std::move(quant));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  int workers_override = -1;
  bool dry_run = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      return usage(argv[0], 0);
    } else if (!std::strcmp(argv[i], "--workers")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      workers_override = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--dry-run")) {
      dry_run = true;
    } else if (manifest_path.empty()) {
      manifest_path = argv[i];
    } else {
      return usage(argv[0], 2);
    }
  }
  if (manifest_path.empty()) return usage(argv[0], 2);

  Manifest manifest;
  try {
    manifest = parse_manifest(silence::runner::read_json_file(manifest_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  const int workers =
      workers_override >= 0 ? workers_override : manifest.fabric_workers;

  const std::string mode = workers > 1
                               ? ", fabric x" + std::to_string(workers)
                               : std::string(" (single-process)");
  std::printf("campaign '%s': %zu sweep(s)%s\n", manifest.campaign.c_str(),
              manifest.sweeps.size(), mode.c_str());

  Json dashboard_sweeps = Json::array();
  std::vector<Json> metric_docs;
  std::vector<Json> telemetry_docs;
  std::vector<Json> health_docs;
  double total_wall = 0.0;
  std::int64_t total_trials = 0;

  for (const SweepEntry& sweep : manifest.sweeps) {
    std::vector<std::string> command = sweep.command;
    command.push_back("--json");
    command.push_back(sweep.json_path);
    if (workers > 1) {
      command.push_back("--fabric");
      command.push_back(std::to_string(workers));
    }
    std::printf("[%s] %s\n", sweep.name.c_str(), join(command).c_str());
    if (dry_run) continue;

    const pid_t pid = silence::fabric::spawn_process(command, {});
    const silence::fabric::ExitStatus status =
        silence::fabric::wait_process(pid);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: sweep '%s' failed: %s\n", argv[0],
                   sweep.name.c_str(), status.describe().c_str());
      return 1;
    }

    Json entry = Json::object();
    entry.set("name", sweep.name);
    entry.set("json", sweep.json_path);
    try {
      const Json result = silence::runner::read_json_file(sweep.json_path);
      if (const Json* bench = result.find("bench")) {
        entry.set("bench", *bench);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: sweep '%s' wrote no readable result: %s\n",
                   argv[0], sweep.name.c_str(), e.what());
      return 1;
    }
    const std::string timing_path =
        silence::runner::timing_sidecar_path(sweep.json_path);
    if (std::filesystem::exists(timing_path)) {
      const Json timing = silence::runner::read_json_file(timing_path);
      if (const Json* wall = timing.find("wall_seconds")) {
        entry.set("wall_seconds", *wall);
        total_wall += wall->as_double();
      }
      if (const Json* trials = timing.find("trials_run")) {
        entry.set("trials_run", *trials);
        total_trials += trials->as_int();
      }
    }
    const std::string metrics_path =
        silence::runner::metrics_sidecar_path(sweep.json_path);
    if (std::filesystem::exists(metrics_path)) {
      metric_docs.push_back(silence::runner::read_json_file(metrics_path));
      entry.set("metrics", metrics_path);
    }
    const std::string telemetry_path =
        silence::runner::telemetry_sidecar_path(sweep.json_path);
    if (std::filesystem::exists(telemetry_path)) {
      telemetry_docs.push_back(silence::runner::read_json_file(telemetry_path));
      entry.set("telemetry", telemetry_path);
    }
    const std::string health_path =
        silence::runner::health_sidecar_path(sweep.json_path);
    if (std::filesystem::exists(health_path)) {
      health_docs.push_back(silence::runner::read_json_file(health_path));
      entry.set("health", health_path);
    }
    dashboard_sweeps.push_back(std::move(entry));
  }
  if (dry_run) return 0;

  Json dashboard = Json::object();
  dashboard.set("campaign", manifest.campaign);
  dashboard.set("schema_version", 1);
  dashboard.set("fabric_workers", workers);
  dashboard.set("sweeps", std::move(dashboard_sweeps));
  Json totals = Json::object();
  totals.set("sweeps", static_cast<std::int64_t>(manifest.sweeps.size()));
  totals.set("trials_run", total_trials);
  totals.set("wall_seconds", total_wall);
  dashboard.set("totals", std::move(totals));
  // The cross-sweep metrics rollup: counters summed, histograms merged
  // with quantiles recomputed — one place to see the whole campaign's
  // pipeline counters (built from the per-shard sidecars each fabric
  // run already merged).
  if (!metric_docs.empty()) {
    dashboard.set("metrics", silence::runner::merge_metrics_json(metric_docs));
  }
  // The fleet-health rollup from the supervisors' .telemetry.json
  // sidecars: shard lifecycle counts (dispatch/retry/straggler-kill/
  // complete), pooled attempt-duration quantiles, and worker-pool
  // utilization across every fabric run of the campaign.
  if (!telemetry_docs.empty()) {
    dashboard.set("fabric_telemetry", merge_fabric_telemetry(telemetry_docs));
  }
  // PHY signal-health rollup: the .health.json documents are integer-only
  // snapshots, so summing them across sweeps is exact — the campaign view
  // is the same document one process recording every sweep would write.
  if (!health_docs.empty()) {
    dashboard.set("health", silence::obs::health::merge_health_json(
                                health_docs));
  }
  silence::runner::write_json_file(manifest.output, dashboard);
  std::printf("campaign dashboard written to %s (%zu sweep(s), %lld trials, "
              "%.2f s total)\n",
              manifest.output.c_str(), manifest.sweeps.size(),
              static_cast<long long>(total_trials), total_wall);
  return 0;
}
