// bench_compare — diffs two perf_phy baseline files for CI perf gating.
//
//   bench_compare <baseline.json> <candidate.json> [--tolerance 0.10]
//
// Compares the top-level benchmark entries ("stages": per-benchmark
// real_ns/cpu_ns/items_per_second) and, when both files carry it, the
// "stage_throughput" map (per-pipeline-stage Mitems/s from the obs
// registry). A benchmark or stage regresses when the candidate is slower
// than baseline by more than the relative tolerance (default 10%).
//
// Exit status: 0 = no regression, 1 = at least one regression OR a
// baseline entry missing from the candidate, 2 = usage/input error. A
// benchmark that exists in the committed baseline but not in the new run
// is a failure — a silently dropped benchmark would otherwise disable
// its gate forever. Candidate-only entries stay informational (new
// benchmarks land before their baseline), as does a candidate lacking
// the whole stage_throughput section (legitimate SILENCE_OBS=OFF
// builds); speedups are reported as informational.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runner/json.h"
#include "runner/sinks.h"

namespace {

using silence::runner::Json;

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <candidate.json> "
               "[--tolerance FRAC] [--report FILE]\n"
               "       [--gate-ratio NUM:DEN:MIN]...\n"
               "  compares two results/BENCH_*.json files; exits 1 when\n"
               "  any benchmark or pipeline stage slowed down by more than\n"
               "  FRAC (default 0.10 = 10%%), or when an entry present in\n"
               "  the baseline is missing from the candidate\n"
               "  --report FILE  also write the comparison as machine-\n"
               "  readable JSON (every compared metric, not just the\n"
               "  out-of-tolerance ones)\n"
               "  --gate-ratio NUM:DEN:MIN  require benchmark NUM's\n"
               "  items_per_second to be at least MIN x benchmark DEN's,\n"
               "  both read from the candidate file (a within-run speedup\n"
               "  gate, e.g. batch vs scalar, immune to machine speed)\n",
               argv0);
  return code;
}

const Json* field(const Json& root, const char* key) {
  return root.is_object() ? root.find(key) : nullptr;
}

double number_field(const Json& entry, const char* key, double fallback) {
  const Json* value = field(entry, key);
  return value != nullptr && value->is_number() ? value->as_double()
                                                : fallback;
}

// One row of the machine-readable report: a compared metric, a baseline
// entry missing from the candidate, or a candidate-only entry.
struct ReportEntry {
  std::string name;
  std::string metric;      // empty for missing / candidate_only rows
  double base = 0.0;
  double cand = 0.0;
  double ratio = 0.0;      // cand / base (0 when not comparable)
  std::string status;      // ok | regression | improvement | missing |
                           // candidate_only
};

struct Comparison {
  std::size_t compared = 0;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t missing = 0;  // in baseline, absent from candidate: a failure
  std::size_t only_candidate = 0;
  std::vector<ReportEntry> entries;

  void add_missing(const std::string& name) {
    ++missing;
    entries.push_back({name, "", 0.0, 0.0, 0.0, "missing"});
  }
  void add_candidate_only(const std::string& name) {
    ++only_candidate;
    entries.push_back({name, "", 0.0, 0.0, 0.0, "candidate_only"});
  }
};

// One metric of one entry. `higher_is_better` flips the regression
// direction (ns vs items/sec).
void compare_metric(const std::string& label, const char* metric,
                    double base, double cand, bool higher_is_better,
                    double tolerance, Comparison& summary) {
  if (base <= 0.0 || cand <= 0.0) return;
  const double ratio = cand / base;
  // Relative slowdown, positive = worse.
  const double slowdown = higher_is_better ? 1.0 - ratio : ratio - 1.0;
  ++summary.compared;
  std::string status = "ok";
  if (slowdown > tolerance) {
    status = "regression";
    ++summary.regressions;
    std::printf("REGRESSION  %-40s %-18s %12.4g -> %12.4g  (%+.1f%%)\n",
                label.c_str(), metric, base, cand,
                100.0 * (ratio - 1.0));
  } else if (slowdown < -tolerance) {
    status = "improvement";
    ++summary.improvements;
    std::printf("improved    %-40s %-18s %12.4g -> %12.4g  (%+.1f%%)\n",
                label.c_str(), metric, base, cand,
                100.0 * (ratio - 1.0));
  }
  summary.entries.push_back({label, metric, base, cand, ratio, status});
}

// "stages" is an array of google-benchmark runs keyed by "name".
void compare_benchmarks(const Json& base_root, const Json& cand_root,
                        double tolerance, Comparison& summary) {
  const Json* base = field(base_root, "stages");
  const Json* cand = field(cand_root, "stages");
  if (base == nullptr || !base->is_array()) return;
  if (cand == nullptr || !cand->is_array()) {
    // The baseline has benchmarks the candidate file lost wholesale.
    for (const Json& base_entry : base->as_array()) {
      const Json* name = field(base_entry, "name");
      if (name == nullptr || !name->is_string()) continue;
      summary.add_missing(name->as_string());
      std::printf("MISSING     benchmark %s absent from candidate\n",
                  name->as_string().c_str());
    }
    return;
  }
  const auto find_by_name = [](const Json& stages, const std::string& name)
      -> const Json* {
    for (const Json& entry : stages.as_array()) {
      const Json* entry_name = field(entry, "name");
      if (entry_name != nullptr && entry_name->is_string() &&
          entry_name->as_string() == name) {
        return &entry;
      }
    }
    return nullptr;
  };
  for (const Json& base_entry : base->as_array()) {
    const Json* name = field(base_entry, "name");
    if (name == nullptr || !name->is_string()) continue;
    const Json* cand_entry = find_by_name(*cand, name->as_string());
    if (cand_entry == nullptr) {
      summary.add_missing(name->as_string());
      std::printf("MISSING     benchmark %s absent from candidate\n",
                  name->as_string().c_str());
      continue;
    }
    compare_metric(name->as_string(), "real_ns",
                   number_field(base_entry, "real_ns", 0.0),
                   number_field(*cand_entry, "real_ns", 0.0),
                   /*higher_is_better=*/false, tolerance, summary);
    compare_metric(name->as_string(), "items_per_second",
                   number_field(base_entry, "items_per_second", 0.0),
                   number_field(*cand_entry, "items_per_second", 0.0),
                   /*higher_is_better=*/true, tolerance, summary);
  }
  for (const Json& cand_entry : cand->as_array()) {
    const Json* name = field(cand_entry, "name");
    if (name == nullptr || !name->is_string()) continue;
    if (find_by_name(*base, name->as_string()) == nullptr) {
      summary.add_candidate_only(name->as_string());
      std::printf("only in candidate: benchmark %s\n",
                  name->as_string().c_str());
    }
  }
}

// "stage_throughput" is an object keyed by pipeline stage; compare the
// Mitems/s figure (absent entirely in SILENCE_OBS=OFF baselines).
void compare_stage_throughput(const Json& base_root, const Json& cand_root,
                              double tolerance, Comparison& summary) {
  const Json* base = field(base_root, "stage_throughput");
  const Json* cand = field(cand_root, "stage_throughput");
  if (base == nullptr || cand == nullptr || !base->is_object() ||
      !cand->is_object()) {
    if (base != nullptr || cand != nullptr) {
      std::printf("stage_throughput present in only one file; skipped\n");
    }
    return;
  }
  for (const auto& [stage, base_entry] : base->as_object()) {
    const Json* cand_entry = cand->find(stage);
    if (cand_entry == nullptr) {
      summary.add_missing("stage " + stage);
      std::printf("MISSING     stage %s absent from candidate\n",
                  stage.c_str());
      continue;
    }
    compare_metric("stage " + stage, "mitems_per_second",
                   number_field(base_entry, "mitems_per_second", 0.0),
                   number_field(*cand_entry, "mitems_per_second", 0.0),
                   /*higher_is_better=*/true, tolerance, summary);
  }
  for (const auto& [stage, cand_entry] : cand->as_object()) {
    (void)cand_entry;
    if (base->find(stage) == nullptr) {
      summary.add_candidate_only("stage " + stage);
      std::printf("only in candidate: stage %s\n", stage.c_str());
    }
  }
}

// A within-candidate speedup gate: numerator benchmark must deliver at
// least `min_ratio` times the denominator's items_per_second. Because
// both numbers come from the same run on the same machine, the gate is
// insensitive to absolute host speed, unlike baseline-vs-candidate.
struct RatioGate {
  std::string numerator;
  std::string denominator;
  double min_ratio = 0.0;
};

bool parse_ratio_gate(const std::string& spec, RatioGate& gate) {
  const std::size_t first = spec.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos
                                 : spec.find(':', first + 1);
  if (second == std::string::npos) return false;
  gate.numerator = spec.substr(0, first);
  gate.denominator = spec.substr(first + 1, second - first - 1);
  char* end = nullptr;
  const std::string min_str = spec.substr(second + 1);
  gate.min_ratio = std::strtod(min_str.c_str(), &end);
  return !gate.numerator.empty() && !gate.denominator.empty() &&
         end != min_str.c_str() && std::isfinite(gate.min_ratio) &&
         gate.min_ratio > 0.0;
}

double candidate_items_per_second(const Json& cand_root,
                                  const std::string& name) {
  const Json* stages = field(cand_root, "stages");
  if (stages == nullptr || !stages->is_array()) return 0.0;
  for (const Json& entry : stages->as_array()) {
    const Json* entry_name = field(entry, "name");
    if (entry_name != nullptr && entry_name->is_string() &&
        entry_name->as_string() == name) {
      return number_field(entry, "items_per_second", 0.0);
    }
  }
  return 0.0;
}

void check_ratio_gates(const Json& cand_root,
                       const std::vector<RatioGate>& gates,
                       Comparison& summary) {
  for (const RatioGate& gate : gates) {
    const std::string label = gate.numerator + " vs " + gate.denominator;
    const double num = candidate_items_per_second(cand_root, gate.numerator);
    const double den =
        candidate_items_per_second(cand_root, gate.denominator);
    if (num <= 0.0 || den <= 0.0) {
      summary.add_missing("ratio gate " + label);
      std::printf(
          "MISSING     ratio gate %s: items_per_second not found in "
          "candidate\n",
          label.c_str());
      continue;
    }
    const double ratio = num / den;
    ++summary.compared;
    std::string status = "ok";
    if (ratio < gate.min_ratio) {
      status = "regression";
      ++summary.regressions;
      std::printf("REGRESSION  %-40s ratio %.3f below required %.3f\n",
                  label.c_str(), ratio, gate.min_ratio);
    } else {
      std::printf("ratio gate  %-40s %.3fx (required >= %.3fx)\n",
                  label.c_str(), ratio, gate.min_ratio);
    }
    summary.entries.push_back(
        {label, "items_ratio", gate.min_ratio, ratio, ratio, status});
  }
}

}  // namespace

// The machine-readable comparison: what the console printout says, but
// with every compared metric included so dashboards can plot ratios
// that stayed inside tolerance too.
Json report_json(const std::string& baseline, const std::string& candidate,
                 double tolerance, const Comparison& summary, bool pass) {
  Json root = Json::object();
  root.set("schema_version", 1);
  root.set("baseline", baseline);
  root.set("candidate", candidate);
  root.set("tolerance", tolerance);
  root.set("pass", pass);
  Json counts = Json::object();
  counts.set("compared", static_cast<std::int64_t>(summary.compared));
  counts.set("regressions", static_cast<std::int64_t>(summary.regressions));
  counts.set("improvements", static_cast<std::int64_t>(summary.improvements));
  counts.set("missing", static_cast<std::int64_t>(summary.missing));
  counts.set("candidate_only",
             static_cast<std::int64_t>(summary.only_candidate));
  root.set("summary", std::move(counts));
  Json entries = Json::array();
  for (const ReportEntry& e : summary.entries) {
    Json row = Json::object();
    row.set("name", e.name);
    row.set("status", e.status);
    if (!e.metric.empty()) {
      row.set("metric", e.metric);
      row.set("base", e.base);
      row.set("cand", e.cand);
      row.set("ratio", e.ratio);
    }
    entries.push_back(std::move(row));
  }
  root.set("entries", std::move(entries));
  return root;
}

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double tolerance = 0.10;
  std::string report_path;
  std::vector<RatioGate> gates;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      return usage(argv[0], 0);
    } else if (!std::strcmp(argv[i], "--tolerance")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      tolerance = std::strtod(argv[++i], nullptr);
      if (!(tolerance >= 0.0) || !std::isfinite(tolerance)) {
        std::fprintf(stderr, "%s: tolerance must be a non-negative number\n",
                     argv[0]);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--report")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      report_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--gate-ratio")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      RatioGate gate;
      if (!parse_ratio_gate(argv[++i], gate)) {
        std::fprintf(stderr,
                     "%s: --gate-ratio expects NUM:DEN:MIN with MIN > 0\n",
                     argv[0]);
        return 2;
      }
      gates.push_back(std::move(gate));
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return usage(argv[0], 2);

  Json base_root;
  Json cand_root;
  try {
    base_root = silence::runner::read_json_file(paths[0]);
    cand_root = silence::runner::read_json_file(paths[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  std::printf("comparing %s (baseline) vs %s (candidate), tolerance %.0f%%\n",
              paths[0].c_str(), paths[1].c_str(), 100.0 * tolerance);
  Comparison summary;
  compare_benchmarks(base_root, cand_root, tolerance, summary);
  compare_stage_throughput(base_root, cand_root, tolerance, summary);
  check_ratio_gates(cand_root, gates, summary);

  std::printf(
      "%zu metric(s) compared: %zu regression(s), %zu improvement(s), "
      "%zu missing from candidate, %zu candidate-only\n",
      summary.compared, summary.regressions, summary.improvements,
      summary.missing, summary.only_candidate);
  const bool comparable = summary.compared > 0 || summary.missing > 0;
  const bool pass = summary.regressions == 0 && summary.missing == 0;
  if (!report_path.empty()) {
    try {
      silence::runner::write_json_file(
          report_path,
          report_json(paths[0], paths[1], tolerance, summary, pass));
      std::printf("report written to %s\n", report_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }
  if (!comparable) {
    std::fprintf(stderr, "%s: nothing comparable between the two files\n",
                 argv[0]);
    return 2;
  }
  return pass ? 0 : 1;
}
