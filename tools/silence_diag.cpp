// silence_diag — replays a flight-recorder anomaly dump bit-exactly.
//
//   silence_diag <dump.flight.json> [--events] [--out replay.json]
//
// Reads the artifact written by a bench run with --flight-dir, rebuilds
// the trial from its embedded (spec, seed), re-runs the full
// TX -> channel -> RX -> detection -> EVD pipeline under a fresh flight
// recording, and compares the replayed artifact against the dump:
// identical seed, spec, result digest (RX bits, detector confusion
// counts) and — in SILENCE_OBS=ON builds — every recorded event,
// double payloads compared by exact bit pattern.
//
// Exit status: 0 = bit-identical replay, 1 = mismatch, 2 = usage/input
// error. `--events` additionally prints every event of the replay;
// `--out` writes the replayed artifact for external diffing.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/flight/flight.h"
#include "runner/sinks.h"
#include "sim/trial.h"

namespace {

using silence::CosTrialResult;
using silence::CosTrialSpec;
using silence::runner::Json;
namespace flight = silence::obs::flight;

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <dump.flight.json> [--events] [--out FILE]\n"
               "  replays a flight-recorder anomaly dump from its embedded\n"
               "  (spec, seed) and verifies the replay is bit-identical\n"
               "  --events    print every replayed flight event\n"
               "  --out FILE  write the replayed artifact to FILE\n",
               argv0);
  return code;
}

const Json* field(const Json& root, const char* key) {
  return root.is_object() ? root.find(key) : nullptr;
}

std::string string_field(const Json& root, const char* key) {
  const Json* value = field(root, key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string();
}

std::int64_t int_field(const Json& root, const char* key) {
  const Json* value = field(root, key);
  return value != nullptr && value->is_int() ? value->as_int() : 0;
}

void print_events(const std::vector<flight::Event>& events) {
  std::printf("  %-18s %6s %6s %16s %16s %12s\n", "stage", "sym", "sc", "a",
              "b", "u");
  for (const flight::Event& e : events) {
    std::printf("  %-18s %6d %6d %16.8g %16.8g %12" PRIu64 "\n", e.stage,
                e.symbol, e.subcarrier, e.a, e.b, e.u);
  }
}

void print_stage_summary(const std::vector<flight::Event>& events) {
  // Insertion-ordered per-stage counts: the pipeline order is the order
  // stages first appear in the recording.
  std::vector<std::pair<const char*, std::size_t>> stages;
  for (const flight::Event& e : events) {
    bool found = false;
    for (auto& [name, count] : stages) {
      if (std::strcmp(name, e.stage) == 0) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) stages.emplace_back(e.stage, 1);
  }
  for (const auto& [name, count] : stages) {
    std::printf("    %-18s %zu event(s)\n", name, count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_path;
  std::string out_path;
  bool show_events = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      return usage(argv[0], 0);
    } else if (!std::strcmp(argv[i], "--events")) {
      show_events = true;
    } else if (!std::strcmp(argv[i], "--out")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      out_path = argv[++i];
    } else if (dump_path.empty()) {
      dump_path = argv[i];
    } else {
      return usage(argv[0], 2);
    }
  }
  if (dump_path.empty()) return usage(argv[0], 2);

  Json dump;
  Json recorded_spec;
  CosTrialSpec spec;
  std::uint64_t seed = 0;
  flight::TrialLabel label;
  try {
    dump = silence::runner::read_json_file(dump_path);
    if (string_field(dump, "kind") != "cos_flight_recording") {
      throw std::runtime_error("not a cos_flight_recording artifact");
    }
    if (int_field(dump, "schema_version") != flight::kFlightSchemaVersion) {
      throw std::runtime_error(
          "unsupported schema_version " +
          std::to_string(int_field(dump, "schema_version")));
    }
    const Json* spec_json = field(dump, "spec");
    if (spec_json == nullptr) throw std::runtime_error("missing 'spec'");
    recorded_spec = *spec_json;
    spec = CosTrialSpec::from_json(*spec_json);
    seed = flight::seed_from_string(string_field(dump, "seed"));
    label.sweep = string_field(dump, "sweep");
    label.point_index = static_cast<std::size_t>(int_field(dump, "point_index"));
    label.trial_index = static_cast<std::size_t>(int_field(dump, "trial_index"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], dump_path.c_str(), e.what());
    return 2;
  }

  std::printf("replaying %s\n", dump_path.c_str());
  std::printf("  sweep %s point %zu trial %zu seed %s\n", label.sweep.c_str(),
              label.point_index, label.trial_index,
              flight::seed_to_string(seed).c_str());
  if (const Json* anomalies = field(dump, "anomalies");
      anomalies != nullptr && anomalies->is_array()) {
    std::printf("  recorded anomalies:");
    for (const Json& reason : anomalies->as_array()) {
      std::printf(" %s", reason.as_string().c_str());
    }
    std::printf("\n");
  }

  // The replay: same spec, same seed, fresh recording. The trial's
  // outcome is a pure function of (spec, seed), so every stage below
  // must reproduce the dump exactly. The recording keeps the dump's spec
  // JSON verbatim — a dump in the legacy flat layout parses to the same
  // trial but would re-serialize in the current layout, and the strict
  // byte comparison below must not punish that.
  flight::TrialRecording rec(label, seed, recorded_spec);
  const CosTrialResult result = silence::run_cos_trial_recorded(spec, seed);
  // In SILENCE_OBS=OFF builds the in-trial hook is compiled out; setting
  // the digest here is idempotent under ON (same value, same bytes).
  rec.set_result(result.summary());

  const std::vector<flight::Event> events = rec.events();
  std::printf("\nreplayed pipeline (%zu flight events):\n", events.size());
  print_stage_summary(events);
  if (show_events) print_events(events);

  std::printf("\nreplayed outcome:\n");
  std::printf("  usable=%d crc_ok=%d control_ok=%d\n", result.usable,
              result.crc_ok, result.control_ok);
  std::printf("  control bits: sent %zu, recovered %zu\n",
              result.control_bits_sent, result.control_bits_recovered);
  std::printf("  detection: active=%zu silent=%zu fp=%zu fn=%zu\n",
              result.detection.active, result.detection.silent,
              result.detection.false_pos, result.detection.false_neg);

  const Json replayed = rec.artifact();
  if (!out_path.empty()) {
    silence::runner::write_json_file(out_path, replayed);
    std::printf("replayed artifact written to %s\n", out_path.c_str());
  }

#if !SILENCE_OBS_ON
  // Without instrumentation the replay regenerates no events; compare
  // the outcome digest only.
  const Json* expected_result = field(dump, "result");
  const Json* actual_result = field(replayed, "result");
  if (expected_result == nullptr || actual_result == nullptr ||
      expected_result->dump_compact() != actual_result->dump_compact()) {
    std::printf("\nMISMATCH: result digest differs "
                "(built with SILENCE_OBS=OFF; events not compared)\n");
    return 1;
  }
  std::printf("\nOK: result digest matches (built with SILENCE_OBS=OFF; "
              "events not compared)\n");
  return 0;
#else
  std::string diff;
  if (!flight::compare_artifacts(dump, replayed, &diff)) {
    std::printf("\nMISMATCH: %s\n", diff.c_str());
    return 1;
  }
  std::printf("\nOK: replay is bit-identical to the dump "
              "(%zu events, result digest, seed, spec)\n",
              events.size());
  return 0;
#endif
}
