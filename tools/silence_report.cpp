// silence_report — fuses one sweep run's artifacts into a single human
// + machine readable report.
//
//   silence_report <result.json> [--trace FILE] [--timing FILE]
//                  [--metrics FILE] [--telemetry FILE] [--health FILE]
//                  [--out BASE]
//
// Inputs:
//   <result.json>            the deterministic sweep result (JsonSink)
//   <stem>.timing.json       wall-clock / thread-count sidecar
//   <stem>.metrics.json      obs counters + latency histograms
//   <stem>.telemetry.json    fabric supervisor shard-lifecycle telemetry
//   <stem>.health.json       PHY signal-health sidecar (obs/health)
//   --trace FILE             Chrome/Perfetto trace (wall spans under
//                            pid 1, per-station MAC timelines under
//                            pid 2, phy-health counters under pid 3)
//
// Sidecars are auto-discovered next to the result file; an absent
// auto-discovered sidecar degrades to a note in the report. Naming an
// input explicitly on the CLI (--trace/--timing/--metrics/--telemetry/
// --health) makes it REQUIRED: if it is missing or unparseable the tool
// prints what went wrong and exits nonzero instead of silently omitting
// the section.
//
// Output: BASE.md (markdown digest: results table, latency percentiles,
// per-station MAC table, PHY health, trace track inventory, fleet
// telemetry) and BASE.json (the same data structured). BASE defaults to
// the result stem + ".report", i.e. results/net_scenarios.json ->
// results/net_scenarios.report.{md,json}.
//
// Exit status: 0 = report written, 2 = usage error, unreadable result,
// or a missing/unparseable explicitly requested input.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/health/health.h"
#include "runner/json.h"
#include "runner/sinks.h"

namespace {

using silence::runner::Json;
namespace health = silence::obs::health;

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <result.json> [--trace FILE] [--timing FILE]\n"
               "       [--metrics FILE] [--telemetry FILE] [--health FILE]\n"
               "       [--out BASE]\n"
               "  fuses the result file, its .timing/.metrics/.telemetry/\n"
               "  .health sidecars and (optionally) a Chrome trace into\n"
               "  BASE.md + BASE.json (default BASE: result stem +\n"
               "  '.report'). Sidecars are auto-discovered next to the\n"
               "  result; naming one explicitly makes it required\n"
               "  (missing or unparseable => exit 2).\n",
               argv0);
  return code;
}

const Json* field(const Json& root, const char* key) {
  return root.is_object() ? root.find(key) : nullptr;
}

std::string string_field(const Json& root, const char* key,
                         const std::string& fallback = "") {
  const Json* v = field(root, key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

double number_field(const Json& root, const char* key, double fallback) {
  const Json* v = field(root, key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

// `results/foo.json` -> `results/foo.report`.
std::string default_out_base(const std::string& json_path) {
  std::string path = json_path;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    path.resize(path.size() - 5);
  }
  return path + ".report";
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

// ---------------------------------------------------------------------
// Trace summary: track inventory + span balance, per process.

struct TrackSummary {
  std::string process;  // process_name metadata for the pid
  std::string name;     // thread_name metadata for (pid, tid)
  std::size_t events = 0;
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t instants = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
};

struct TraceSummary {
  bool loaded = false;
  std::string path;
  std::string error;
  std::size_t total_events = 0;
  // Keyed (pid, tid), insertion-ordered by first appearance.
  std::vector<std::pair<std::pair<std::int64_t, std::int64_t>, TrackSummary>>
      tracks;

  TrackSummary& track(std::int64_t pid, std::int64_t tid) {
    for (auto& [key, summary] : tracks) {
      if (key.first == pid && key.second == tid) return summary;
    }
    tracks.push_back({{pid, tid}, {}});
    return tracks.back().second;
  }
};

TraceSummary summarize_trace(const std::string& path) {
  TraceSummary out;
  out.path = path;
  Json root;
  try {
    root = silence::runner::read_json_file(path);
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }
  const Json* events = field(root, "traceEvents");
  if (events == nullptr || !events->is_array()) {
    out.error = "no traceEvents array";
    return out;
  }
  std::map<std::int64_t, std::string> process_names;
  for (const Json& event : events->as_array()) {
    const std::string ph = string_field(event, "ph");
    const auto pid = static_cast<std::int64_t>(number_field(event, "pid", 0));
    const auto tid = static_cast<std::int64_t>(number_field(event, "tid", 0));
    if (ph == "M") {
      const std::string what = string_field(event, "name");
      const Json* args = field(event, "args");
      const std::string value =
          args != nullptr ? string_field(*args, "name") : "";
      if (what == "process_name") {
        process_names[pid] = value;
      } else if (what == "thread_name") {
        out.track(pid, tid).name = value;
      }
      continue;
    }
    ++out.total_events;
    TrackSummary& track = out.track(pid, tid);
    const double ts = number_field(event, "ts", 0.0);
    if (track.events == 0 || ts < track.first_ts) track.first_ts = ts;
    if (track.events == 0 || ts > track.last_ts) track.last_ts = ts;
    ++track.events;
    if (ph == "B") ++track.begins;
    else if (ph == "E") ++track.ends;
    else if (ph == "i" || ph == "I") ++track.instants;
  }
  for (auto& [key, track] : out.tracks) {
    const auto it = process_names.find(key.first);
    if (it != process_names.end()) track.process = it->second;
  }
  out.loaded = true;
  return out;
}

// ---------------------------------------------------------------------
// Per-station rollup out of the .metrics.json histograms/counters.

struct StationRow {
  std::string label;  // "00", "01", ...
  double hol_p50 = 0.0, hol_p95 = 0.0, hol_p99 = 0.0;
  double gap_p50 = 0.0, gap_p95 = 0.0;
  std::int64_t tx_count = 0;      // hol histogram count == winning TXes
  std::int64_t collisions = 0;
};

std::vector<StationRow> station_rows(const Json& metrics) {
  std::map<std::string, StationRow> rows;
  const auto row_for = [&rows](const std::string& label) -> StationRow& {
    StationRow& row = rows[label];
    row.label = label;
    return row;
  };
  static const std::string prefix = "net.sta.";
  if (const Json* histograms = field(metrics, "histograms")) {
    for (const auto& [name, entry] : histograms->as_object()) {
      if (name.rfind(prefix, 0) != 0) continue;
      const std::size_t dot = name.find('.', prefix.size());
      if (dot == std::string::npos) continue;
      const std::string label = name.substr(prefix.size(), dot - prefix.size());
      const std::string what = name.substr(dot + 1);
      StationRow& row = row_for(label);
      if (what == "hol_wait_slots") {
        row.hol_p50 = number_field(entry, "p50", 0.0);
        row.hol_p95 = number_field(entry, "p95", 0.0);
        row.hol_p99 = number_field(entry, "p99", 0.0);
        row.tx_count = static_cast<std::int64_t>(
            number_field(entry, "count", 0.0));
      } else if (what == "inter_tx_gap_slots") {
        row.gap_p50 = number_field(entry, "p50", 0.0);
        row.gap_p95 = number_field(entry, "p95", 0.0);
      }
    }
  }
  if (const Json* counters = field(metrics, "counters")) {
    for (const auto& [name, value] : counters->as_object()) {
      if (name.rfind(prefix, 0) != 0) continue;
      const std::size_t dot = name.find('.', prefix.size());
      if (dot == std::string::npos || name.substr(dot + 1) != "collisions") {
        continue;
      }
      row_for(name.substr(prefix.size(), dot - prefix.size())).collisions =
          value.as_int();
    }
  }
  std::vector<StationRow> out;
  for (auto& [label, row] : rows) out.push_back(std::move(row));
  return out;
}

// ---------------------------------------------------------------------
// Markdown rendering.

void md_results_table(std::string& md, const Json& result) {
  const Json* columns = field(result, "columns");
  const Json* points = field(result, "points");
  if (columns == nullptr || !columns->is_array() || points == nullptr ||
      !points->is_array() || points->size() == 0) {
    md += "_no result points_\n";
    return;
  }
  std::vector<std::string> names;
  for (const Json& c : columns->as_array()) names.push_back(c.as_string());
  md += "|";
  for (const std::string& n : names) md += " " + n + " |";
  md += "\n|";
  for (std::size_t i = 0; i < names.size(); ++i) md += " --- |";
  md += "\n";
  for (const Json& point : points->as_array()) {
    md += "|";
    for (const std::string& n : names) {
      const Json* cell = point.find(n);
      md += ' ';
      md += cell != nullptr ? cell->dump_compact() : "-";
      md += " |";
    }
    md += "\n";
  }
}

// ---------------------------------------------------------------------
// PHY health: .health.json sidecar rollup (obs/health).

// Cells the detector declared silent: scores are decision-clamped below
// kScoreThreshold (= 256 = 2^8), and buckets 0..8 hold exactly the
// values 0..255, so the bucket sum is exact, not an estimate.
std::uint64_t declared_silent(const health::HealthHist& h) {
  const std::size_t boundary =
      silence::obs::histogram_bucket(health::kScoreThreshold - 1);
  std::uint64_t n = 0;
  for (std::size_t b = 0; b <= boundary; ++b) n += h.buckets[b];
  return n;
}

// Whole-band rollup of one waterfall kind (or one truth's score row).
struct BandSummary {
  std::uint64_t active_cells = 0;  // subcarriers with >= 1 sample
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  void add(const health::HealthHist& h) {
    if (h.count == 0) return;
    if (active_cells == 0 || h.min < min) min = h.min;
    if (active_cells == 0 || h.max > max) max = h.max;
    ++active_cells;
    count += h.count;
    sum += h.sum;
  }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

BandSummary band_summary(
    const std::array<health::HealthHist, health::kSubcarriers>& row) {
  BandSummary out;
  for (const health::HealthHist& h : row) out.add(h);
  return out;
}

// The detector operating point at the configured threshold, computed two
// independent ways: from the confusion counters and from the per-truth
// score histograms. The quantization makes them equal by construction;
// `consistent` is the cross-check.
struct OperatingPoint {
  std::uint64_t truth_silent = 0, truth_active = 0;
  std::uint64_t misses = 0, false_alarms = 0;
  std::uint64_t hist_misses = 0, hist_false_alarms = 0;
  bool consistent = false;

  double miss_rate() const {
    return truth_silent == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(truth_silent);
  }
  double false_alarm_rate() const {
    return truth_active == 0 ? 0.0
                             : static_cast<double>(false_alarms) /
                                   static_cast<double>(truth_active);
  }
};

OperatingPoint operating_point(const health::HealthSnapshot& h) {
  const auto counter = [&h](health::Counter c) {
    return h.counters[static_cast<std::size_t>(c)];
  };
  OperatingPoint out;
  out.truth_silent = counter(health::Counter::kTruthSilent);
  out.truth_active = counter(health::Counter::kTruthActive);
  out.misses = counter(health::Counter::kMisses);
  out.false_alarms = counter(health::Counter::kFalseAlarms);
  std::uint64_t silent_total = 0, silent_detected = 0, active_silent = 0;
  const auto& silent =
      h.scores[static_cast<std::size_t>(health::Truth::kSilent)];
  const auto& active =
      h.scores[static_cast<std::size_t>(health::Truth::kActive)];
  for (std::size_t sc = 0; sc < health::kSubcarriers; ++sc) {
    silent_total += silent[sc].count;
    silent_detected += declared_silent(silent[sc]);
    active_silent += declared_silent(active[sc]);
  }
  out.hist_misses = silent_total - silent_detected;
  out.hist_false_alarms = active_silent;
  out.consistent = out.hist_misses == out.misses &&
                   out.hist_false_alarms == out.false_alarms &&
                   silent_total == out.truth_silent;
  return out;
}

void md_health_section(std::string& md, const health::HealthSnapshot& h) {
  const auto counter = [&h](health::Counter c) {
    return static_cast<unsigned long long>(
        h.counters[static_cast<std::size_t>(c)]);
  };
  char line[256];

  // Silence-plan audit: planned vs detected vs decoded.
  std::snprintf(line, sizeof(line),
                "- plan: %llu call(s), %llu interval(s), %llu silence(s), "
                "%llu bit(s)\n",
                counter(health::Counter::kPlans),
                counter(health::Counter::kIntervalsPlanned),
                counter(health::Counter::kSilencesPlanned),
                counter(health::Counter::kBitsPlanned));
  md += line;
  std::snprintf(line, sizeof(line),
                "- decode: %llu round(s), %llu interval(s) detected, "
                "%llu bit(s) decoded\n",
                counter(health::Counter::kDecodeRounds),
                counter(health::Counter::kIntervalsDetected),
                counter(health::Counter::kBitsDecoded));
  md += line;
  const std::uint64_t rounds =
      h.counters[static_cast<std::size_t>(health::Counter::kSelectionRounds)];
  if (rounds > 0) {
    const double n = static_cast<double>(rounds);
    std::snprintf(
        line, sizeof(line),
        "- selection: %llu round(s); per round %s selected, %s detectable, "
        "%s erroneous\n",
        counter(health::Counter::kSelectionRounds),
        fmt(counter(health::Counter::kSubcarriersSelected) / n).c_str(),
        fmt(counter(health::Counter::kSubcarriersDetectable) / n).c_str(),
        fmt(counter(health::Counter::kSubcarriersErroneous) / n).c_str());
    md += line;
  } else {
    md += "- selection: no feedback rounds recorded\n";
  }
  if (h.nabla_evm.count > 0) {
    std::snprintf(line, sizeof(line),
                  "- nabla-EVM drift: %llu sample(s), mean %s\n",
                  static_cast<unsigned long long>(h.nabla_evm.count),
                  fmt(h.nabla_evm.mean() / health::kNablaEvmScale).c_str());
    md += line;
  }

  // Waterfalls, scaled back to physical units.
  md += "\n| waterfall | subcarriers | samples | mean | min | max |\n"
        "| --- | --- | --- | --- | --- | --- |\n";
  static constexpr struct {
    health::Waterfall kind;
    const char* label;
    double scale;
  } kKinds[] = {
      {health::Waterfall::kSnr, "bin SNR (linear)", health::kSnrScale},
      {health::Waterfall::kEvm, "EVM", health::kEvmScale},
      {health::Waterfall::kChanMag, "|H|", health::kChanScale},
  };
  for (const auto& kind : kKinds) {
    const BandSummary band =
        band_summary(h.waterfalls[static_cast<std::size_t>(kind.kind)]);
    if (band.count == 0) {
      md += std::string("| ") + kind.label + " | 0 | 0 | - | - | - |\n";
      continue;
    }
    md += std::string("| ") + kind.label + " | " +
          std::to_string(band.active_cells) + " | " +
          std::to_string(band.count) + " | " +
          fmt(band.mean() / kind.scale) + " | " +
          fmt(static_cast<double>(band.min) / kind.scale) + " | " +
          fmt(static_cast<double>(band.max) / kind.scale) + " |\n";
  }

  // Detector operating point at the configured threshold (score 256).
  const OperatingPoint op = operating_point(h);
  if (op.truth_silent + op.truth_active > 0) {
    std::snprintf(
        line, sizeof(line),
        "\nDetector @ configured threshold: %llu silent cell(s) "
        "(miss rate %s), %llu active cell(s) (false-alarm rate %s)\n",
        static_cast<unsigned long long>(op.truth_silent),
        fmt(op.miss_rate()).c_str(),
        static_cast<unsigned long long>(op.truth_active),
        fmt(op.false_alarm_rate()).c_str());
    md += line;
    md += op.consistent
              ? "ROC histogram vs confusion counters: consistent\n"
              : "ROC histogram vs confusion counters: **MISMATCH**\n";
  } else {
    md += "\nDetector: no ground-truth labelled scores (network runs "
          "don't label; see fig10)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string result_path;
  std::string trace_path;
  std::string out_base;
  // Explicitly named sidecar paths (empty = auto-discover, tolerant).
  std::string timing_path, metrics_path, telemetry_path, health_path;
  const auto take_value = [&](int& i, std::string& into) {
    if (i + 1 >= argc) return false;
    into = argv[++i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      return usage(argv[0], 0);
    } else if (!std::strcmp(argv[i], "--trace")) {
      if (!take_value(i, trace_path)) return usage(argv[0], 2);
    } else if (!std::strcmp(argv[i], "--timing")) {
      if (!take_value(i, timing_path)) return usage(argv[0], 2);
    } else if (!std::strcmp(argv[i], "--metrics")) {
      if (!take_value(i, metrics_path)) return usage(argv[0], 2);
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      if (!take_value(i, telemetry_path)) return usage(argv[0], 2);
    } else if (!std::strcmp(argv[i], "--health")) {
      if (!take_value(i, health_path)) return usage(argv[0], 2);
    } else if (!std::strcmp(argv[i], "--out")) {
      if (!take_value(i, out_base)) return usage(argv[0], 2);
    } else if (result_path.empty()) {
      result_path = argv[i];
    } else {
      return usage(argv[0], 2);
    }
  }
  if (result_path.empty()) return usage(argv[0], 2);
  if (out_base.empty()) out_base = default_out_base(result_path);

  Json result;
  try {
    result = silence::runner::read_json_file(result_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  // Sidecars. Auto-discovered ones that are absent degrade to a note in
  // the report; an input the user explicitly asked for must load, so a
  // missing file fails loudly instead of producing a silently thinner
  // report. Parse errors are fatal either way — a sidecar that exists
  // but doesn't parse is a broken artifact, not an optional one.
  bool load_failed = false;
  const auto load_sidecar = [&](const std::string& explicit_path,
                                const std::string& auto_path,
                                const char* what, Json& into) {
    const bool required = !explicit_path.empty();
    const std::string& path = required ? explicit_path : auto_path;
    if (!std::filesystem::exists(path)) {
      if (required) {
        std::fprintf(stderr, "%s: requested %s sidecar does not exist: %s\n",
                     argv[0], what, path.c_str());
        load_failed = true;
      }
      return false;
    }
    try {
      into = silence::runner::read_json_file(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: cannot parse %s sidecar %s: %s\n", argv[0],
                   what, path.c_str(), e.what());
      load_failed = true;
      return false;
    }
    return true;
  };
  Json timing, metrics, telemetry, health_doc;
  const bool have_timing = load_sidecar(
      timing_path, silence::runner::timing_sidecar_path(result_path),
      "timing", timing);
  const bool have_metrics = load_sidecar(
      metrics_path, silence::runner::metrics_sidecar_path(result_path),
      "metrics", metrics);
  const bool have_telemetry = load_sidecar(
      telemetry_path, silence::runner::telemetry_sidecar_path(result_path),
      "telemetry", telemetry);
  const bool have_health = load_sidecar(
      health_path, silence::runner::health_sidecar_path(result_path),
      "health", health_doc);
  if (load_failed) return 2;

  health::HealthSnapshot health_snapshot;
  if (have_health) {
    try {
      health_snapshot = health::health_from_json(health_doc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: malformed health sidecar: %s\n", argv[0],
                   e.what());
      return 2;
    }
  }

  TraceSummary trace;
  if (!trace_path.empty()) {
    trace = summarize_trace(trace_path);
    // --trace is always an explicit request: an unreadable trace is an
    // error, not a report footnote.
    if (!trace.loaded) {
      std::fprintf(stderr, "%s: cannot read trace %s: %s\n", argv[0],
                   trace_path.c_str(), trace.error.c_str());
      return 2;
    }
  }

  const std::string bench = string_field(result, "bench", "(unknown)");
  const std::vector<StationRow> stations =
      have_metrics ? station_rows(metrics) : std::vector<StationRow>{};

  // ----- markdown -----
  std::string md;
  md += "# Run report: " + bench + "\n\n";
  md += string_field(result, "title") + " — " +
        string_field(result, "description") + "\n\n";
  md += "- result: `" + result_path + "`\n";
  if (have_timing) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "- timing: %.2f s wall, %d thread(s), %lld trial(s)\n",
                  number_field(timing, "wall_seconds", 0.0),
                  static_cast<int>(number_field(timing, "threads", 0.0)),
                  static_cast<long long>(
                      number_field(timing, "trials_run", 0.0)));
    md += line;
  } else {
    md += "- timing: _no .timing.json sidecar_\n";
  }
  md += "\n## Results\n\n";
  md_results_table(md, result);

  md += "\n## Latency metrics\n\n";
  if (!have_metrics) {
    md += "_no .metrics.json sidecar (run with --json under "
          "SILENCE_OBS=ON)_\n";
  } else {
    md += "| histogram | count | mean | p50 | p95 | p99 |\n"
          "| --- | --- | --- | --- | --- | --- |\n";
    std::size_t listed = 0;
    if (const Json* histograms = field(metrics, "histograms")) {
      for (const auto& [name, entry] : histograms->as_object()) {
        // The per-station rows get their own table below.
        if (name.rfind("net.sta.", 0) == 0) continue;
        md += "| " + name + " | " +
              fmt(number_field(entry, "count", 0.0)) + " | " +
              fmt(number_field(entry, "mean", 0.0)) + " | " +
              fmt(number_field(entry, "p50", 0.0)) + " | " +
              fmt(number_field(entry, "p95", 0.0)) + " | " +
              fmt(number_field(entry, "p99", 0.0)) + " |\n";
        ++listed;
      }
    }
    if (listed == 0) md += "| _none_ | | | | | |\n";
    if (!stations.empty()) {
      md += "\n### Per-station MAC latency (slots)\n\n"
            "| STA | TXes | HoL p50 | HoL p95 | HoL p99 | gap p50 | "
            "gap p95 | collisions |\n"
            "| --- | --- | --- | --- | --- | --- | --- | --- |\n";
      for (const StationRow& row : stations) {
        md += "| " + row.label + " | " + std::to_string(row.tx_count) +
              " | " + fmt(row.hol_p50) + " | " + fmt(row.hol_p95) + " | " +
              fmt(row.hol_p99) + " | " + fmt(row.gap_p50) + " | " +
              fmt(row.gap_p95) + " | " + std::to_string(row.collisions) +
              " |\n";
      }
    }
  }

  md += "\n## PHY health\n\n";
  if (!have_health) {
    md += "_no .health.json sidecar (run with --json under "
          "SILENCE_OBS=ON)_\n";
  } else {
    md_health_section(md, health_snapshot);
  }

  md += "\n## Trace\n\n";
  if (trace_path.empty()) {
    md += "_no trace supplied (--trace FILE)_\n";
  } else {
    md += "`" + trace_path + "`: " + std::to_string(trace.total_events) +
          " event(s), " + std::to_string(trace.tracks.size()) +
          " track(s)\n\n";
    md += "| process | track | events | spans | instants | balanced |\n"
          "| --- | --- | --- | --- | --- | --- |\n";
    for (const auto& [key, track] : trace.tracks) {
      const std::string name =
          !track.name.empty()
              ? track.name
              : "tid " + std::to_string(key.second);
      md += "| " + (track.process.empty() ? "-" : track.process) + " | " +
            name + " | " + std::to_string(track.events) + " | " +
            std::to_string(track.begins) + "B/" +
            std::to_string(track.ends) + "E | " +
            std::to_string(track.instants) + " | " +
            (track.begins == track.ends ? "yes" : "NO") + " |\n";
    }
  }

  md += "\n## Fabric telemetry\n\n";
  if (!have_telemetry) {
    md += "_no .telemetry.json sidecar (single-process run, or the fabric "
          "recorded no events)_\n";
  } else {
    const Json* summary = field(telemetry, "summary");
    char line[360];
    std::snprintf(
        line, sizeof(line),
        "%d worker(s), %lld shard(s), %.2f s wall — %lld dispatch(es), "
        "%lld complete(s), %lld retry(ies), %lld straggler kill(s), "
        "%lld worker failure(s), %lld artifact reject(s); utilization "
        "%.0f%%\n",
        static_cast<int>(number_field(telemetry, "workers", 0.0)),
        static_cast<long long>(number_field(telemetry, "shards", 0.0)),
        number_field(telemetry, "wall_seconds", 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "dispatches", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "completes", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "retries", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "straggler_kills", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "worker_failures", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "artifact_rejects", 0.0) : 0.0),
        100.0 *
            (summary ? number_field(*summary, "worker_utilization", 0.0)
                     : 0.0));
    md += line;
    if (summary != nullptr) {
      if (const Json* attempts = field(*summary, "attempt_seconds")) {
        std::snprintf(line, sizeof(line),
                      "\nattempt duration: %s/%s/%s s (p50/p95/p99) over "
                      "%lld attempt(s)\n",
                      fmt(number_field(*attempts, "p50", 0.0)).c_str(),
                      fmt(number_field(*attempts, "p95", 0.0)).c_str(),
                      fmt(number_field(*attempts, "p99", 0.0)).c_str(),
                      static_cast<long long>(
                          number_field(*attempts, "count", 0.0)));
        md += line;
      }
    }
  }
  md += "\n";

  // ----- structured JSON -----
  Json report = Json::object();
  report.set("schema_version", 1);
  report.set("bench", bench);
  report.set("result", result_path);
  if (have_timing) report.set("timing", timing);
  if (have_metrics) {
    report.set("metrics", metrics);
    Json sta_rows = Json::array();
    for (const StationRow& row : stations) {
      Json r = Json::object();
      r.set("sta", row.label);
      r.set("tx_count", row.tx_count);
      r.set("hol_p50", row.hol_p50);
      r.set("hol_p95", row.hol_p95);
      r.set("hol_p99", row.hol_p99);
      r.set("gap_p50", row.gap_p50);
      r.set("gap_p95", row.gap_p95);
      r.set("collisions", row.collisions);
      sta_rows.push_back(std::move(r));
    }
    report.set("stations", std::move(sta_rows));
  }
  if (have_telemetry) report.set("fabric_telemetry", telemetry);
  if (have_health) {
    report.set("health", health_doc);
    const OperatingPoint op = operating_point(health_snapshot);
    Json roc = Json::object();
    roc.set("truth_silent", static_cast<std::int64_t>(op.truth_silent));
    roc.set("truth_active", static_cast<std::int64_t>(op.truth_active));
    roc.set("misses", static_cast<std::int64_t>(op.misses));
    roc.set("false_alarms", static_cast<std::int64_t>(op.false_alarms));
    roc.set("miss_rate", op.miss_rate());
    roc.set("false_alarm_rate", op.false_alarm_rate());
    roc.set("histogram_consistent", op.consistent);
    report.set("detector_operating_point", std::move(roc));
  }
  if (!trace_path.empty() && trace.loaded) {
    Json t = Json::object();
    t.set("path", trace.path);
    t.set("events", static_cast<std::int64_t>(trace.total_events));
    Json tracks = Json::array();
    for (const auto& [key, track] : trace.tracks) {
      Json row = Json::object();
      row.set("pid", key.first);
      row.set("tid", key.second);
      row.set("process", track.process);
      row.set("name", track.name);
      row.set("events", static_cast<std::int64_t>(track.events));
      row.set("begins", static_cast<std::int64_t>(track.begins));
      row.set("ends", static_cast<std::int64_t>(track.ends));
      row.set("instants", static_cast<std::int64_t>(track.instants));
      row.set("balanced", track.begins == track.ends);
      tracks.push_back(std::move(row));
    }
    t.set("tracks", std::move(tracks));
    report.set("trace", std::move(t));
  }

  const std::string md_path = out_base + ".md";
  const std::string json_path = out_base + ".json";
  try {
    const std::filesystem::path p(md_path);
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path());
    }
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + md_path);
    out << md;
    silence::runner::write_json_file(json_path, report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  std::printf("report written to %s and %s\n", md_path.c_str(),
              json_path.c_str());
  return 0;
}
