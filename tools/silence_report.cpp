// silence_report — fuses one sweep run's artifacts into a single human
// + machine readable report.
//
//   silence_report <result.json> [--trace FILE] [--out BASE]
//
// Inputs (all but the result file optional — missing ones are noted,
// never fatal):
//   <result.json>            the deterministic sweep result (JsonSink)
//   <stem>.timing.json       wall-clock / thread-count sidecar
//   <stem>.metrics.json      obs counters + latency histograms
//   <stem>.telemetry.json    fabric supervisor shard-lifecycle telemetry
//   --trace FILE             Chrome/Perfetto trace (wall spans under
//                            pid 1, per-station MAC timelines under
//                            pid 2; see net/timeline.h)
//
// Output: BASE.md (markdown digest: results table, latency percentiles,
// per-station MAC table, trace track inventory, fleet telemetry) and
// BASE.json (the same data structured). BASE defaults to the result
// stem + ".report", i.e. results/net_scenarios.json ->
// results/net_scenarios.report.{md,json}.
//
// Exit status: 0 = report written, 2 = usage error or unreadable result.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/json.h"
#include "runner/sinks.h"

namespace {

using silence::runner::Json;

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <result.json> [--trace FILE] [--out BASE]\n"
               "  fuses the result file, its .timing/.metrics/.telemetry\n"
               "  sidecars and (optionally) a Chrome trace into BASE.md +\n"
               "  BASE.json (default BASE: result stem + '.report')\n",
               argv0);
  return code;
}

const Json* field(const Json& root, const char* key) {
  return root.is_object() ? root.find(key) : nullptr;
}

std::string string_field(const Json& root, const char* key,
                         const std::string& fallback = "") {
  const Json* v = field(root, key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

double number_field(const Json& root, const char* key, double fallback) {
  const Json* v = field(root, key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

// `results/foo.json` -> `results/foo.report`.
std::string default_out_base(const std::string& json_path) {
  std::string path = json_path;
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    path.resize(path.size() - 5);
  }
  return path + ".report";
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

// ---------------------------------------------------------------------
// Trace summary: track inventory + span balance, per process.

struct TrackSummary {
  std::string process;  // process_name metadata for the pid
  std::string name;     // thread_name metadata for (pid, tid)
  std::size_t events = 0;
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t instants = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
};

struct TraceSummary {
  bool loaded = false;
  std::string path;
  std::string error;
  std::size_t total_events = 0;
  // Keyed (pid, tid), insertion-ordered by first appearance.
  std::vector<std::pair<std::pair<std::int64_t, std::int64_t>, TrackSummary>>
      tracks;

  TrackSummary& track(std::int64_t pid, std::int64_t tid) {
    for (auto& [key, summary] : tracks) {
      if (key.first == pid && key.second == tid) return summary;
    }
    tracks.push_back({{pid, tid}, {}});
    return tracks.back().second;
  }
};

TraceSummary summarize_trace(const std::string& path) {
  TraceSummary out;
  out.path = path;
  Json root;
  try {
    root = silence::runner::read_json_file(path);
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }
  const Json* events = field(root, "traceEvents");
  if (events == nullptr || !events->is_array()) {
    out.error = "no traceEvents array";
    return out;
  }
  std::map<std::int64_t, std::string> process_names;
  for (const Json& event : events->as_array()) {
    const std::string ph = string_field(event, "ph");
    const auto pid = static_cast<std::int64_t>(number_field(event, "pid", 0));
    const auto tid = static_cast<std::int64_t>(number_field(event, "tid", 0));
    if (ph == "M") {
      const std::string what = string_field(event, "name");
      const Json* args = field(event, "args");
      const std::string value =
          args != nullptr ? string_field(*args, "name") : "";
      if (what == "process_name") {
        process_names[pid] = value;
      } else if (what == "thread_name") {
        out.track(pid, tid).name = value;
      }
      continue;
    }
    ++out.total_events;
    TrackSummary& track = out.track(pid, tid);
    const double ts = number_field(event, "ts", 0.0);
    if (track.events == 0 || ts < track.first_ts) track.first_ts = ts;
    if (track.events == 0 || ts > track.last_ts) track.last_ts = ts;
    ++track.events;
    if (ph == "B") ++track.begins;
    else if (ph == "E") ++track.ends;
    else if (ph == "i" || ph == "I") ++track.instants;
  }
  for (auto& [key, track] : out.tracks) {
    const auto it = process_names.find(key.first);
    if (it != process_names.end()) track.process = it->second;
  }
  out.loaded = true;
  return out;
}

// ---------------------------------------------------------------------
// Per-station rollup out of the .metrics.json histograms/counters.

struct StationRow {
  std::string label;  // "00", "01", ...
  double hol_p50 = 0.0, hol_p95 = 0.0, hol_p99 = 0.0;
  double gap_p50 = 0.0, gap_p95 = 0.0;
  std::int64_t tx_count = 0;      // hol histogram count == winning TXes
  std::int64_t collisions = 0;
};

std::vector<StationRow> station_rows(const Json& metrics) {
  std::map<std::string, StationRow> rows;
  const auto row_for = [&rows](const std::string& label) -> StationRow& {
    StationRow& row = rows[label];
    row.label = label;
    return row;
  };
  static const std::string prefix = "net.sta.";
  if (const Json* histograms = field(metrics, "histograms")) {
    for (const auto& [name, entry] : histograms->as_object()) {
      if (name.rfind(prefix, 0) != 0) continue;
      const std::size_t dot = name.find('.', prefix.size());
      if (dot == std::string::npos) continue;
      const std::string label = name.substr(prefix.size(), dot - prefix.size());
      const std::string what = name.substr(dot + 1);
      StationRow& row = row_for(label);
      if (what == "hol_wait_slots") {
        row.hol_p50 = number_field(entry, "p50", 0.0);
        row.hol_p95 = number_field(entry, "p95", 0.0);
        row.hol_p99 = number_field(entry, "p99", 0.0);
        row.tx_count = static_cast<std::int64_t>(
            number_field(entry, "count", 0.0));
      } else if (what == "inter_tx_gap_slots") {
        row.gap_p50 = number_field(entry, "p50", 0.0);
        row.gap_p95 = number_field(entry, "p95", 0.0);
      }
    }
  }
  if (const Json* counters = field(metrics, "counters")) {
    for (const auto& [name, value] : counters->as_object()) {
      if (name.rfind(prefix, 0) != 0) continue;
      const std::size_t dot = name.find('.', prefix.size());
      if (dot == std::string::npos || name.substr(dot + 1) != "collisions") {
        continue;
      }
      row_for(name.substr(prefix.size(), dot - prefix.size())).collisions =
          value.as_int();
    }
  }
  std::vector<StationRow> out;
  for (auto& [label, row] : rows) out.push_back(std::move(row));
  return out;
}

// ---------------------------------------------------------------------
// Markdown rendering.

void md_results_table(std::string& md, const Json& result) {
  const Json* columns = field(result, "columns");
  const Json* points = field(result, "points");
  if (columns == nullptr || !columns->is_array() || points == nullptr ||
      !points->is_array() || points->size() == 0) {
    md += "_no result points_\n";
    return;
  }
  std::vector<std::string> names;
  for (const Json& c : columns->as_array()) names.push_back(c.as_string());
  md += "|";
  for (const std::string& n : names) md += " " + n + " |";
  md += "\n|";
  for (std::size_t i = 0; i < names.size(); ++i) md += " --- |";
  md += "\n";
  for (const Json& point : points->as_array()) {
    md += "|";
    for (const std::string& n : names) {
      const Json* cell = point.find(n);
      md += ' ';
      md += cell != nullptr ? cell->dump_compact() : "-";
      md += " |";
    }
    md += "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string result_path;
  std::string trace_path;
  std::string out_base;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      return usage(argv[0], 0);
    } else if (!std::strcmp(argv[i], "--trace")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--out")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      out_base = argv[++i];
    } else if (result_path.empty()) {
      result_path = argv[i];
    } else {
      return usage(argv[0], 2);
    }
  }
  if (result_path.empty()) return usage(argv[0], 2);
  if (out_base.empty()) out_base = default_out_base(result_path);

  Json result;
  try {
    result = silence::runner::read_json_file(result_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  // Sidecars: absent ones degrade to a note in the report.
  const auto load_optional = [](const std::string& path, Json& into) {
    if (!std::filesystem::exists(path)) return false;
    into = silence::runner::read_json_file(path);
    return true;
  };
  Json timing, metrics, telemetry;
  bool have_timing = false, have_metrics = false, have_telemetry = false;
  try {
    have_timing =
        load_optional(silence::runner::timing_sidecar_path(result_path),
                      timing);
    have_metrics =
        load_optional(silence::runner::metrics_sidecar_path(result_path),
                      metrics);
    have_telemetry =
        load_optional(silence::runner::telemetry_sidecar_path(result_path),
                      telemetry);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  TraceSummary trace;
  if (!trace_path.empty()) trace = summarize_trace(trace_path);

  const std::string bench = string_field(result, "bench", "(unknown)");
  const std::vector<StationRow> stations =
      have_metrics ? station_rows(metrics) : std::vector<StationRow>{};

  // ----- markdown -----
  std::string md;
  md += "# Run report: " + bench + "\n\n";
  md += string_field(result, "title") + " — " +
        string_field(result, "description") + "\n\n";
  md += "- result: `" + result_path + "`\n";
  if (have_timing) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "- timing: %.2f s wall, %d thread(s), %lld trial(s)\n",
                  number_field(timing, "wall_seconds", 0.0),
                  static_cast<int>(number_field(timing, "threads", 0.0)),
                  static_cast<long long>(
                      number_field(timing, "trials_run", 0.0)));
    md += line;
  } else {
    md += "- timing: _no .timing.json sidecar_\n";
  }
  md += "\n## Results\n\n";
  md_results_table(md, result);

  md += "\n## Latency metrics\n\n";
  if (!have_metrics) {
    md += "_no .metrics.json sidecar (run with --json under "
          "SILENCE_OBS=ON)_\n";
  } else {
    md += "| histogram | count | mean | p50 | p95 | p99 |\n"
          "| --- | --- | --- | --- | --- | --- |\n";
    std::size_t listed = 0;
    if (const Json* histograms = field(metrics, "histograms")) {
      for (const auto& [name, entry] : histograms->as_object()) {
        // The per-station rows get their own table below.
        if (name.rfind("net.sta.", 0) == 0) continue;
        md += "| " + name + " | " +
              fmt(number_field(entry, "count", 0.0)) + " | " +
              fmt(number_field(entry, "mean", 0.0)) + " | " +
              fmt(number_field(entry, "p50", 0.0)) + " | " +
              fmt(number_field(entry, "p95", 0.0)) + " | " +
              fmt(number_field(entry, "p99", 0.0)) + " |\n";
        ++listed;
      }
    }
    if (listed == 0) md += "| _none_ | | | | | |\n";
    if (!stations.empty()) {
      md += "\n### Per-station MAC latency (slots)\n\n"
            "| STA | TXes | HoL p50 | HoL p95 | HoL p99 | gap p50 | "
            "gap p95 | collisions |\n"
            "| --- | --- | --- | --- | --- | --- | --- | --- |\n";
      for (const StationRow& row : stations) {
        md += "| " + row.label + " | " + std::to_string(row.tx_count) +
              " | " + fmt(row.hol_p50) + " | " + fmt(row.hol_p95) + " | " +
              fmt(row.hol_p99) + " | " + fmt(row.gap_p50) + " | " +
              fmt(row.gap_p95) + " | " + std::to_string(row.collisions) +
              " |\n";
      }
    }
  }

  md += "\n## Trace\n\n";
  if (trace_path.empty()) {
    md += "_no trace supplied (--trace FILE)_\n";
  } else if (!trace.loaded) {
    md += "_could not read `" + trace_path + "`: " + trace.error + "_\n";
  } else {
    md += "`" + trace_path + "`: " + std::to_string(trace.total_events) +
          " event(s), " + std::to_string(trace.tracks.size()) +
          " track(s)\n\n";
    md += "| process | track | events | spans | instants | balanced |\n"
          "| --- | --- | --- | --- | --- | --- |\n";
    for (const auto& [key, track] : trace.tracks) {
      const std::string name =
          !track.name.empty()
              ? track.name
              : "tid " + std::to_string(key.second);
      md += "| " + (track.process.empty() ? "-" : track.process) + " | " +
            name + " | " + std::to_string(track.events) + " | " +
            std::to_string(track.begins) + "B/" +
            std::to_string(track.ends) + "E | " +
            std::to_string(track.instants) + " | " +
            (track.begins == track.ends ? "yes" : "NO") + " |\n";
    }
  }

  md += "\n## Fabric telemetry\n\n";
  if (!have_telemetry) {
    md += "_no .telemetry.json sidecar (single-process run, or the fabric "
          "recorded no events)_\n";
  } else {
    const Json* summary = field(telemetry, "summary");
    char line[360];
    std::snprintf(
        line, sizeof(line),
        "%d worker(s), %lld shard(s), %.2f s wall — %lld dispatch(es), "
        "%lld complete(s), %lld retry(ies), %lld straggler kill(s), "
        "%lld worker failure(s), %lld artifact reject(s); utilization "
        "%.0f%%\n",
        static_cast<int>(number_field(telemetry, "workers", 0.0)),
        static_cast<long long>(number_field(telemetry, "shards", 0.0)),
        number_field(telemetry, "wall_seconds", 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "dispatches", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "completes", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "retries", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "straggler_kills", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "worker_failures", 0.0) : 0.0),
        static_cast<long long>(
            summary ? number_field(*summary, "artifact_rejects", 0.0) : 0.0),
        100.0 *
            (summary ? number_field(*summary, "worker_utilization", 0.0)
                     : 0.0));
    md += line;
    if (summary != nullptr) {
      if (const Json* attempts = field(*summary, "attempt_seconds")) {
        std::snprintf(line, sizeof(line),
                      "\nattempt duration: %s/%s/%s s (p50/p95/p99) over "
                      "%lld attempt(s)\n",
                      fmt(number_field(*attempts, "p50", 0.0)).c_str(),
                      fmt(number_field(*attempts, "p95", 0.0)).c_str(),
                      fmt(number_field(*attempts, "p99", 0.0)).c_str(),
                      static_cast<long long>(
                          number_field(*attempts, "count", 0.0)));
        md += line;
      }
    }
  }
  md += "\n";

  // ----- structured JSON -----
  Json report = Json::object();
  report.set("schema_version", 1);
  report.set("bench", bench);
  report.set("result", result_path);
  if (have_timing) report.set("timing", timing);
  if (have_metrics) {
    report.set("metrics", metrics);
    Json sta_rows = Json::array();
    for (const StationRow& row : stations) {
      Json r = Json::object();
      r.set("sta", row.label);
      r.set("tx_count", row.tx_count);
      r.set("hol_p50", row.hol_p50);
      r.set("hol_p95", row.hol_p95);
      r.set("hol_p99", row.hol_p99);
      r.set("gap_p50", row.gap_p50);
      r.set("gap_p95", row.gap_p95);
      r.set("collisions", row.collisions);
      sta_rows.push_back(std::move(r));
    }
    report.set("stations", std::move(sta_rows));
  }
  if (have_telemetry) report.set("fabric_telemetry", telemetry);
  if (!trace_path.empty() && trace.loaded) {
    Json t = Json::object();
    t.set("path", trace.path);
    t.set("events", static_cast<std::int64_t>(trace.total_events));
    Json tracks = Json::array();
    for (const auto& [key, track] : trace.tracks) {
      Json row = Json::object();
      row.set("pid", key.first);
      row.set("tid", key.second);
      row.set("process", track.process);
      row.set("name", track.name);
      row.set("events", static_cast<std::int64_t>(track.events));
      row.set("begins", static_cast<std::int64_t>(track.begins));
      row.set("ends", static_cast<std::int64_t>(track.ends));
      row.set("instants", static_cast<std::int64_t>(track.instants));
      row.set("balanced", track.begins == track.ends);
      tracks.push_back(std::move(row));
    }
    t.set("tracks", std::move(tracks));
    report.set("trace", std::move(t));
  }

  const std::string md_path = out_base + ".md";
  const std::string json_path = out_base + ".json";
  try {
    const std::filesystem::path p(md_path);
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path());
    }
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + md_path);
    out << md;
    silence::runner::write_json_file(json_path, report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  std::printf("report written to %s and %s\n", md_path.c_str(),
              json_path.c_str());
  return 0;
}
