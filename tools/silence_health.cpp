// silence_health — renders a `.health.json` PHY signal-health sidecar
// (obs/health) into human-readable tables.
//
//   silence_health <file.health.json> [--md FILE] [--csv FILE] [--verify]
//
//   (default)     markdown digest to stdout: audit counters, the
//                 per-subcarrier waterfall table (SNR / EVM / |H| means
//                 plus detector counts), an empirical ROC sweep, and the
//                 nabla-EVM drift summary
//   --md FILE     write the same markdown to FILE instead of stdout
//   --csv FILE    write the per-subcarrier waterfall as CSV
//   --verify      cross-check the histogram-derived detection counts at
//                 the configured threshold (score 256) against the
//                 confusion counters recorded by the sim layer
//
// The ROC sweep is exact, not interpolated: scores are quantized into
// power-of-two histogram buckets, so "declared silent at threshold 2^b"
// is a plain bucket sum. At the configured threshold (score 256 = the
// detector's actual decision, clamped into the quantization) the sweep
// row must reproduce the kMisses/kFalseAlarms counters bit-for-bit —
// that is what --verify asserts.
//
// Exit status: 0 = ok, 1 = --verify mismatch, 2 = usage error or
// unreadable/malformed input.
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/health/health.h"
#include "runner/json.h"
#include "runner/sinks.h"

namespace {

namespace health = silence::obs::health;
using health::HealthHist;
using health::HealthSnapshot;

int usage(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s <file.health.json> [--md FILE] [--csv FILE] [--verify]\n"
      "  renders a PHY signal-health sidecar as markdown (stdout or\n"
      "  --md FILE) and optionally CSV; --verify cross-checks the\n"
      "  histogram-derived ROC at the configured threshold against the\n"
      "  recorded confusion counters (exit 1 on mismatch)\n",
      argv0);
  return code;
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::uint64_t counter(const HealthSnapshot& h, health::Counter c) {
  return h.counters[static_cast<std::size_t>(c)];
}

const std::array<HealthHist, health::kSubcarriers>& waterfall_row(
    const HealthSnapshot& h, health::Waterfall w) {
  return h.waterfalls[static_cast<std::size_t>(w)];
}

const std::array<HealthHist, health::kSubcarriers>& score_row(
    const HealthSnapshot& h, health::Truth t) {
  return h.scores[static_cast<std::size_t>(t)];
}

// Scores strictly below bucket boundary 2^b (buckets 0..b hold exactly
// the values 0..2^b - 1), summed over the whole band.
std::uint64_t band_below(const std::array<HealthHist, health::kSubcarriers>&
                             row,
                         std::size_t boundary_bucket) {
  std::uint64_t n = 0;
  for (const HealthHist& h : row) {
    for (std::size_t b = 0; b <= boundary_bucket && b < h.buckets.size();
         ++b) {
      n += h.buckets[b];
    }
  }
  return n;
}

std::uint64_t band_count(
    const std::array<HealthHist, health::kSubcarriers>& row) {
  std::uint64_t n = 0;
  for (const HealthHist& h : row) n += h.count;
  return n;
}

// Largest non-empty bucket index across both truth rows — bounds the
// ROC sweep so the table stops once every score is below the threshold.
std::size_t max_score_bucket(const HealthSnapshot& h) {
  std::size_t top = 0;
  for (const auto truth : {health::Truth::kActive, health::Truth::kSilent}) {
    for (const HealthHist& cell : score_row(h, truth)) {
      for (std::size_t b = 0; b < cell.buckets.size(); ++b) {
        if (cell.buckets[b] > 0 && b > top) top = b;
      }
    }
  }
  return top;
}

std::string md_render(const HealthSnapshot& h) {
  std::string md;
  md += "# PHY signal health\n\n## Audit counters\n\n"
        "| counter | value |\n| --- | --- |\n";
  for (std::size_t c = 0; c < static_cast<std::size_t>(health::Counter::kCount);
       ++c) {
    md += std::string("| ") +
          health::counter_name(static_cast<health::Counter>(c)) + " | " +
          std::to_string(h.counters[c]) + " |\n";
  }

  md += "\n## Per-subcarrier waterfalls\n\n"
        "Means in physical units (SNR linear, EVM rms fraction, |H| "
        "magnitude); `-` = no samples.\n\n"
        "| sc | SNR n | SNR mean | EVM n | EVM mean | \\|H\\| n | "
        "\\|H\\| mean | silent n | active n |\n"
        "| --- | --- | --- | --- | --- | --- | --- | --- | --- |\n";
  const auto& snr = waterfall_row(h, health::Waterfall::kSnr);
  const auto& evm = waterfall_row(h, health::Waterfall::kEvm);
  const auto& mag = waterfall_row(h, health::Waterfall::kChanMag);
  const auto& silent = score_row(h, health::Truth::kSilent);
  const auto& active = score_row(h, health::Truth::kActive);
  const auto cell = [](const HealthHist& hist, double scale) {
    return std::to_string(hist.count) + " | " +
           (hist.count == 0 ? std::string("-") : fmt(hist.mean() / scale));
  };
  for (std::size_t sc = 0; sc < health::kSubcarriers; ++sc) {
    md += "| " + std::to_string(sc) + " | " +
          cell(snr[sc], health::kSnrScale) + " | " +
          cell(evm[sc], health::kEvmScale) + " | " +
          cell(mag[sc], health::kChanScale) + " | " +
          std::to_string(silent[sc].count) + " | " +
          std::to_string(active[sc].count) + " |\n";
  }

  md += "\n## Empirical ROC\n\n";
  const std::uint64_t silent_total = band_count(silent);
  const std::uint64_t active_total = band_count(active);
  if (silent_total + active_total == 0) {
    md += "_no ground-truth labelled detector scores (network runs don't "
          "label; run fig10)_\n";
  } else {
    md += "Exact bucket sums at power-of-two score thresholds (score "
          "256 = the configured detector threshold).\n\n"
          "| threshold (x256) | misses | miss rate | false alarms | "
          "false-alarm rate |\n| --- | --- | --- | --- | --- |\n";
    const std::size_t top = max_score_bucket(h);
    for (std::size_t b = 0; b <= top; ++b) {
      // Buckets 0..b hold exactly the values 0..2^b - 1, so this row is
      // the operating point "declare silent when score < 2^b".
      const std::uint64_t silent_below = band_below(silent, b);
      const std::uint64_t active_below = band_below(active, b);
      const std::uint64_t misses = silent_total - silent_below;
      const std::uint64_t threshold = std::uint64_t{1} << b;
      md += "| " + std::to_string(threshold) +
            (threshold == health::kScoreThreshold ? " (configured)" : "") +
            " | " + std::to_string(misses) + " | " +
            fmt(silent_total == 0
                    ? 0.0
                    : static_cast<double>(misses) /
                          static_cast<double>(silent_total)) +
            " | " + std::to_string(active_below) + " | " +
            fmt(active_total == 0
                    ? 0.0
                    : static_cast<double>(active_below) /
                          static_cast<double>(active_total)) +
            " |\n";
    }
  }

  md += "\n## nabla-EVM drift\n\n";
  if (h.nabla_evm.count == 0) {
    md += "_no drift samples (needs >= 2 decoded feedback rounds per "
          "session)_\n";
  } else {
    md += std::to_string(h.nabla_evm.count) + " sample(s), mean " +
          fmt(h.nabla_evm.mean() / health::kNablaEvmScale) + ", max " +
          fmt(static_cast<double>(h.nabla_evm.max) /
              health::kNablaEvmScale) +
          "\n";
  }
  return md;
}

std::string csv_render(const HealthSnapshot& h) {
  std::string csv =
      "subcarrier,snr_count,snr_mean,evm_count,evm_mean,chan_mag_count,"
      "chan_mag_mean,silent_scores,silent_detected,active_scores,"
      "active_declared_silent\n";
  const auto& snr = waterfall_row(h, health::Waterfall::kSnr);
  const auto& evm = waterfall_row(h, health::Waterfall::kEvm);
  const auto& mag = waterfall_row(h, health::Waterfall::kChanMag);
  const auto& silent = score_row(h, health::Truth::kSilent);
  const auto& active = score_row(h, health::Truth::kActive);
  const std::size_t boundary =
      silence::obs::histogram_bucket(health::kScoreThreshold - 1);
  const auto below = [boundary](const HealthHist& hist) {
    std::uint64_t n = 0;
    for (std::size_t b = 0; b <= boundary; ++b) n += hist.buckets[b];
    return n;
  };
  for (std::size_t sc = 0; sc < health::kSubcarriers; ++sc) {
    csv += std::to_string(sc) + "," + std::to_string(snr[sc].count) + "," +
           fmt(snr[sc].mean() / health::kSnrScale) + "," +
           std::to_string(evm[sc].count) + "," +
           fmt(evm[sc].mean() / health::kEvmScale) + "," +
           std::to_string(mag[sc].count) + "," +
           fmt(mag[sc].mean() / health::kChanScale) + "," +
           std::to_string(silent[sc].count) + "," +
           std::to_string(below(silent[sc])) + "," +
           std::to_string(active[sc].count) + "," +
           std::to_string(below(active[sc])) + "\n";
  }
  return csv;
}

// The cross-check --verify asserts: the quantization clamps the decision
// into the score, so the bucket sums at the configured threshold must
// reproduce the sim layer's confusion counters exactly.
int verify(const HealthSnapshot& h) {
  const std::size_t boundary =
      silence::obs::histogram_bucket(health::kScoreThreshold - 1);
  const auto& silent = score_row(h, health::Truth::kSilent);
  const auto& active = score_row(h, health::Truth::kActive);
  const std::uint64_t silent_total = band_count(silent);
  const std::uint64_t active_total = band_count(active);
  const std::uint64_t hist_misses =
      silent_total - band_below(silent, boundary);
  const std::uint64_t hist_false_alarms = band_below(active, boundary);

  struct Check {
    const char* what;
    std::uint64_t histogram;
    std::uint64_t counters;
  };
  const Check checks[] = {
      {"truth-silent cells", silent_total,
       counter(h, health::Counter::kTruthSilent)},
      {"truth-active cells", active_total,
       counter(h, health::Counter::kTruthActive)},
      {"misses @256", hist_misses, counter(h, health::Counter::kMisses)},
      {"false alarms @256", hist_false_alarms,
       counter(h, health::Counter::kFalseAlarms)},
  };
  int bad = 0;
  for (const Check& c : checks) {
    if (c.histogram == c.counters) {
      std::printf("verify: %-18s %llu == %llu  OK\n", c.what,
                  static_cast<unsigned long long>(c.histogram),
                  static_cast<unsigned long long>(c.counters));
    } else {
      std::printf("verify: %-18s histogram %llu != counter %llu  MISMATCH\n",
                  c.what, static_cast<unsigned long long>(c.histogram),
                  static_cast<unsigned long long>(c.counters));
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

bool write_text(const std::string& path, const std::string& text,
                const char* argv0) {
  try {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
      std::filesystem::create_directories(p.parent_path());
    }
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << text;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv0, e.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path, md_path, csv_path;
  bool do_verify = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      return usage(argv[0], 0);
    } else if (!std::strcmp(argv[i], "--md")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      md_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--csv")) {
      if (i + 1 >= argc) return usage(argv[0], 2);
      csv_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--verify")) {
      do_verify = true;
    } else if (input_path.empty()) {
      input_path = argv[i];
    } else {
      return usage(argv[0], 2);
    }
  }
  if (input_path.empty()) return usage(argv[0], 2);

  HealthSnapshot snapshot;
  try {
    snapshot =
        health::health_from_json(silence::runner::read_json_file(input_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], input_path.c_str(),
                 e.what());
    return 2;
  }

  const std::string md = md_render(snapshot);
  if (md_path.empty()) {
    if (!do_verify) std::fputs(md.c_str(), stdout);
  } else if (!write_text(md_path, md, argv[0])) {
    return 2;
  }
  if (!csv_path.empty() && !write_text(csv_path, csv_render(snapshot),
                                       argv[0])) {
    return 2;
  }
  return do_verify ? verify(snapshot) : 0;
}
