// Ablations of the design choices DESIGN.md §4 calls out:
//   1. k — bits per interval: capacity vs per-message reliability;
//   2. EVD vs error-only decoding under silence load;
//   3. detector threshold margin: miss rate vs false alarms;
//   4. hardware impairments: how a TX EVM floor shrinks the silence
//      budget (closing part of the absolute gap to the paper's R_m).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "channel/impairments.h"
#include "common/crc32.h"
#include "core/cos_link.h"
#include "sim/link.h"
#include "sim/session.h"

using namespace silence;

namespace {

const std::vector<int> kMidControl = {8, 12, 16, 20, 24, 28, 32, 36};

// --- 1. k sweep ---------------------------------------------------------
void ablate_k() {
  std::printf("(1) bits per interval k: capacity vs delivery\n");
  std::printf("%4s %16s %16s %14s\n", "k", "bits_per_packet",
              "packets_perfect", "bit_accuracy");
  for (int k = 2; k <= 6; ++k) {
    std::size_t bits_sent = 0, bits_ok = 0;
    int perfect = 0, packets = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      LinkConfig lc;
      lc.snr_db = 16.0;
      lc.snr_is_measured = true;
      lc.channel_seed = seed;
      lc.noise_seed = seed * 31;
      Link link(lc);
      SessionConfig session_config;
      session_config.profile.bits_per_interval = k;
      CosSession session(link, session_config);
      Rng rng(seed * 100 + static_cast<std::uint64_t>(k));
      const Bytes psdu = make_test_psdu(1024, rng);
      for (int p = 0; p < 4; ++p) {
        const Bits control = rng.bits(600);
        const PacketReport report = session.send_packet(psdu, control);
        if (p == 0) continue;  // bootstrap on the default subcarrier set
        ++packets;
        bits_sent += report.control_bits_sent;
        bits_ok += report.control_bits_correct;
        perfect += report.control_ok;
      }
    }
    std::printf("%4d %16.1f %13d/%02d %14.3f\n", k,
                static_cast<double>(bits_sent) / packets, perfect, packets,
                bits_sent ? static_cast<double>(bits_ok) / bits_sent : 0.0);
  }
  std::printf(
      "  larger k carries more bits per silence symbol but needs longer\n"
      "  gaps (fewer silences fit) and loses more bits per detection slip.\n\n");
}

// --- 2. EVD vs error-only ------------------------------------------------
void ablate_evd() {
  std::printf("(2) erasure Viterbi decoding vs error-only decoding\n");
  std::printf("%8s %10s %12s %14s\n", "rate", "margin_dB", "EVD_PRR",
              "error_only_PRR");
  for (int rate : {24, 36, 54}) {
    for (double margin : {3.0, 6.0}) {
      int evd = 0, error_only = 0;
      const int trials = 25;
      for (int t = 0; t < trials; ++t) {
        Rng rng(static_cast<std::uint64_t>(t) * 13 + 7);
        const Mcs& mcs = mcs_for_rate(rate);
        Bytes psdu = rng.bytes(1020);
        append_fcs(psdu);
        const Bits control = rng.bits(400);
        CosTxConfig txc;
        txc.mcs = McsId::of(mcs);
        txc.control_subcarriers = kMidControl;
        const CosTxPacket tx = cos_transmit(psdu, control, txc);
        CxVec samples = tx.samples;
        const double nv =
            noise_var_for_snr_db(mcs.min_required_snr_db + margin);
        for (auto& x : samples) x += rng.complex_gaussian(nv);
        const FrontEndResult fe = receiver_front_end(samples);
        if (!fe.signal) continue;
        evd += decode_data_symbols(fe, mcs, 1024, &tx.plan.mask).crc_ok;
        error_only += decode_data_symbols(fe, mcs, 1024, nullptr).crc_ok;
      }
      std::printf("%8d %10.0f %9d/25 %11d/25\n", rate, margin, evd,
                  error_only);
    }
  }
  std::printf(
      "  treating silences as erasures (bit metric 0) preserves packets\n"
      "  that confidently-wrong symbol decisions would destroy,\n"
      "  especially on the punctured 3/4-rate codes.\n\n");
}

// --- 3. threshold margin -------------------------------------------------
void ablate_margin() {
  std::printf("(3) detection threshold margin (x noise floor)\n");
  std::printf("%8s %12s %12s\n", "margin", "false_pos", "false_neg");
  for (double margin : {2.0, 4.0, 7.0, 12.0, 20.0}) {
    std::size_t active = 0, silent = 0, fp = 0, fn = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      Rng rng(seed * 997);
      MultipathProfile profile;
      profile.rician_k_linear = 10.0;
      profile.decay_taps = 1.5;
      FadingChannel channel(profile, seed);
      const double nv = noise_var_for_measured_snr(channel, 14.0);
      CosTxConfig txc;
      txc.mcs = McsId::for_rate(12);
      txc.control_subcarriers = kMidControl;
      const Bytes psdu = make_test_psdu(512, rng);
      const CosTxPacket tx = cos_transmit(psdu, rng.bits(80), txc);
      const CxVec received = channel.transmit(tx.samples, nv, rng);
      const FrontEndResult fe = receiver_front_end(received);
      if (!fe.signal) continue;
      DetectorConfig detector;
      detector.mode = ThresholdMode::kNoiseMargin;
      detector.threshold_margin = margin;
      const SilenceMask detected = detect_silences(fe, kMidControl, detector);
      if (detected.size() != tx.plan.mask.size()) continue;
      for (std::size_t s = 0; s < detected.size(); ++s) {
        for (int sc : kMidControl) {
          const auto idx = static_cast<std::size_t>(sc);
          if (tx.plan.mask[s][idx]) {
            ++silent;
            fn += !detected[s][idx];
          } else {
            ++active;
            fp += detected[s][idx];
          }
        }
      }
    }
    std::printf("%8.0f %12.5f %12.5f\n", margin,
                active ? static_cast<double>(fp) / active : 0.0,
                silent ? static_cast<double>(fn) / silent : 0.0);
  }
  std::printf("  the miss rate of true silences falls as e^-margin while\n"
              "  deep-faded active symbols start crossing the threshold.\n\n");
}

// --- 4. TX EVM floor vs silence budget ------------------------------------
void ablate_impairments() {
  std::printf("(4) TX EVM floor vs sustainable silence budget (24 Mbps)\n");
  std::printf("%12s %18s\n", "evm_floor", "max_silences/packet");
  const Mcs& mcs = mcs_for_rate(24);
  for (double floor : {0.0, 0.03, 0.06, 0.09}) {
    // Largest per-packet silence count keeping every one of 20 packets
    // decodable at a fixed 15 dB measured SNR.
    int lo = 0, hi = 600;
    const auto holds = [&](int budget) {
      const auto k = static_cast<std::size_t>(kDefaultBitsPerInterval);
      const std::size_t bits = budget > 1
                                   ? (static_cast<std::size_t>(budget) - 1) * k
                                   : 0;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 71);
        MultipathProfile profile;
        FadingChannel channel(profile, seed);
        const double nv = noise_var_for_measured_snr(channel, 15.0);
        ImpairmentProfile impairment;
        impairment.tx_evm_floor = floor;
        RadioImpairments radio(impairment, seed);

        CosTxConfig txc;
        txc.mcs = McsId::of(mcs);
        txc.control_subcarriers = {0,  2,  4,  6,  8,  10, 12, 14, 16, 18,
                                   20, 22, 24, 26, 28, 30, 32, 34, 36, 38};
        const Bytes psdu = make_test_psdu(1024, rng);
        const CosTxPacket tx = cos_transmit(psdu, rng.bits(bits), txc);
        const CxVec impaired = radio.apply(tx.samples);
        const CxVec received = channel.transmit(impaired, nv, rng);
        CosRxConfig rxc;
        rxc.control_subcarriers = txc.control_subcarriers;
        if (!cos_receive(received, rxc).data_ok) return false;
      }
      return true;
    };
    if (!holds(0)) {
      std::printf("%12.2f %18s\n", floor, "(link dead)");
      continue;
    }
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      if (holds(mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    std::printf("%12.2f %18d\n", floor, lo);
  }
  std::printf(
      "  hardware error floors eat the very code redundancy CoS spends on\n"
      "  silences — a large part of why the paper's SDR prototype reports\n"
      "  smaller absolute R_m than this clean simulator (EXPERIMENTS.md).\n");
}

}  // namespace

int main() {
  bench::print_header("Ablations", "design-choice studies (DESIGN.md §4)");
  ablate_k();
  ablate_evd();
  ablate_margin();
  ablate_impairments();
  return 0;
}
