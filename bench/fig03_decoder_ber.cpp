// Reproduces paper Fig. 3: decoder-input BER versus measured SNR at
// 24 Mbps, split into the actual BER and the redundant BER (the extra
// error rate the channel code could still absorb, defined relative to the
// BER at the rate's minimum required SNR of 12 dB).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"
#include "sim/stats.h"

using namespace silence;

namespace {

// Decoder-input BER: hard-decision errors on the transmitted coded stream
// before Viterbi decoding, averaged over packets and positions.
double decoder_input_ber(double measured_snr_db, int packets) {
  const Mcs& mcs = mcs_for_rate(24);
  ErrorStats stats;
  for (int p = 0; p < packets; ++p) {
    Rng rng(static_cast<std::uint64_t>(p) * 977 + 11);
    MultipathProfile profile;
    FadingChannel channel(profile, static_cast<std::uint64_t>(p) + 1);
    const double nv = noise_var_for_measured_snr(channel, measured_snr_db);

    Bytes psdu = rng.bytes(1020);
    append_fcs(psdu);
    const TxFrame frame = build_frame(psdu, mcs);
    const CxVec received =
        channel.transmit(frame_to_samples(frame), nv, rng);
    const FrontEndResult fe = receiver_front_end(received);
    if (!fe.signal) continue;
    const DecodeResult decode =
        decode_data_symbols(fe, mcs, static_cast<int>(psdu.size()));
    stats.bits += frame.coded_bits.size();
    stats.bit_errors +=
        hamming_distance(decode.decoder_input_hard, frame.coded_bits);
  }
  return stats.ber();
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3", "decoder-input BER vs measured SNR at 24 Mbps (16QAM 1/2)");

  const int packets = 60;
  // Reference: the BER the code is provisioned for, at the minimum
  // required SNR of the 24 Mbps rate.
  const double reference_ber = decoder_input_ber(12.0, packets);
  std::printf("reference decoder-input BER at 12.0 dB: %.5f\n\n",
              reference_ber);
  std::printf("%12s %12s %14s\n", "measured_dB", "actual_BER",
              "redundant_BER");

  for (double snr = 12.0; snr <= 17.3; snr += 0.5) {
    const double ber = decoder_input_ber(snr, packets);
    const double redundant = reference_ber - ber;
    std::printf("%12.1f %12.5f %14.5f\n", snr, ber,
                redundant < 0.0 ? 0.0 : redundant);
  }
  std::printf(
      "\nPaper shape: actual BER falls from ~0.02 toward 0 as the\n"
      "measured SNR rises from 12 dB; the redundant BER (the code's\n"
      "unused correction capability) grows correspondingly.\n");
  return 0;
}
