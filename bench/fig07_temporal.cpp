// Reproduces paper Fig. 7: temporal selectivity of subcarriers in the
// indoor mobile (walking-speed) scenario.
//   (a) per-subcarrier EVM snapshots separated by tau = 0..40 ms;
//   (b) CDF of the normalized EVM change (nabla-EVM) for each tau.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "sim/stats.h"

using namespace silence;

namespace {

// The paper's measured channels keep an essentially static frequency
// response over tens of ms (its Fig. 7 observation); model that as
// frozen ray geometry with a small scattered residue.
MultipathProfile mobile_profile() {
  MultipathProfile profile;
  profile.doppler_hz = 15.0;        // ~3.4 mph at 5 GHz-ish
  profile.k_all_taps_linear = 1000;  // static rays dominate every tap
  return profile;
}

// One EVM snapshot of the current channel state, averaged over several
// packets of the fixed known payload (the paper measures over repeated
// transmissions of one fixed packet).
SubcarrierEvm snapshot(const FadingChannel& channel, double nv,
                       std::uint64_t noise_seed) {
  const Mcs& mcs = mcs_for_rate(24);
  Rng packet_rng(1234);
  Bytes psdu = packet_rng.bytes(1020);
  append_fcs(psdu);
  const TxFrame frame = build_frame(psdu, mcs);
  const CxVec tx = frame_to_samples(frame);

  SubcarrierEvm sum{};
  int count = 0;
  for (int p = 0; p < 24; ++p) {
    Rng noise(noise_seed * 131 + static_cast<std::uint64_t>(p));
    const CxVec received = channel.transmit(tx, nv, noise);
    const FrontEndResult fe = receiver_front_end(received);
    if (!fe.signal) continue;
    const DecodeResult decode =
        decode_data_symbols(fe, mcs, static_cast<int>(psdu.size()));
    if (!decode.crc_ok) continue;
    const auto ideal = reconstruct_ideal_grid(decode, mcs);
    const auto evm = per_subcarrier_evm(decode.eq_data, ideal, mcs.modulation);
    for (int j = 0; j < kNumDataSubcarriers; ++j) {
      sum[static_cast<std::size_t>(j)] += evm[static_cast<std::size_t>(j)];
    }
    ++count;
  }
  SubcarrierEvm out{};
  if (count == 0) return out;
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    out[static_cast<std::size_t>(j)] =
        sum[static_cast<std::size_t>(j)] / count;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 7", "temporal selectivity at walking speed (indoor mobile)");

  const MultipathProfile profile = mobile_profile();
  const std::vector<double> taus = {0.0, 10e-3, 20e-3, 30e-3, 40e-3};

  // (a) EVM snapshots under increasing time gaps from one start state.
  {
    std::printf("(a) EVM(%%) per subcarrier for time gaps tau\n");
    std::printf("%10s", "subcarrier");
    for (double tau : taus) std::printf("  tau=%2.0fms", tau * 1e3);
    std::printf("\n");
    std::vector<SubcarrierEvm> snapshots;
    for (std::size_t t = 0; t < taus.size(); ++t) {
      FadingChannel channel(profile, 555);
      channel.advance(taus[t]);
      const double nv = noise_var_for_measured_snr(channel, 16.0);
      snapshots.push_back(snapshot(channel, nv, 42));
    }
    for (int j = 0; j < kNumDataSubcarriers; ++j) {
      std::printf("%10d", j + 1);
      for (const auto& snap : snapshots) {
        std::printf("%10.2f", 100.0 * snap[static_cast<std::size_t>(j)]);
      }
      std::printf("\n");
    }
  }

  // (b) CDF of nabla-EVM over many trials per tau.
  std::printf("\n(b) CDF of nabla-EVM\n");
  std::printf("%10s %12s %12s %12s %12s\n", "tau_ms", "p50", "p90", "p99",
              "mean");
  for (std::size_t t = 1; t < taus.size(); ++t) {
    std::vector<double> changes;
    for (std::uint64_t trial = 0; trial < 80; ++trial) {
      FadingChannel channel(profile, 1000 + trial);
      const double nv = noise_var_for_measured_snr(channel, 16.0);
      const SubcarrierEvm before = snapshot(channel, nv, trial * 2);
      channel.advance(taus[t]);
      const SubcarrierEvm after = snapshot(channel, nv, trial * 2 + 1);
      changes.push_back(evm_change(before, after));
    }
    std::printf("%10.0f %12.4f %12.4f %12.4f %12.4f\n", taus[t] * 1e3,
                quantile(changes, 0.5), quantile(changes, 0.9),
                quantile(changes, 0.99), mean(changes));
  }
  std::printf(
      "\nPaper shape: per-subcarrier EVM is stable across tens of ms; the\n"
      "nabla-EVM CDFs for tau = 10..40 ms sit close together at small\n"
      "values, so the current measurement predicts the next packets.\n");
  return 0;
}
