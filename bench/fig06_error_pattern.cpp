// Reproduces paper Fig. 6: symbol-error structure within a packet at
// position A.
//   (a) frequency of symbol errors vs in-packet symbol position (first
//       1000 positions) — a periodic pattern with period 48 (the number
//       of data subcarriers);
//   (b) per-subcarrier symbol error rate (SER).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "phy/modulation.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"

using namespace silence;

int main() {
  bench::print_header("Fig. 6",
                      "symbol error pattern within a packet (position A)");

  const Mcs& mcs = mcs_for_rate(24);
  // Position A of fig05 (same LOS-dominant office profile).
  MultipathProfile profile;
  profile.rician_k_linear = 10.0;
  profile.decay_taps = 1.5;
  FadingChannel channel(profile, 101);
  const double nv = noise_var_for_measured_snr(channel, 12.5);

  // Fixed packet known to both ends (the paper's measurement method).
  Rng packet_rng(1234);
  Bytes psdu = packet_rng.bytes(1020);
  append_fcs(psdu);
  const TxFrame frame = build_frame(psdu, mcs);
  const CxVec tx_samples = frame_to_samples(frame);

  const int total_symbols = frame.num_symbols() * kNumDataSubcarriers;
  std::vector<long> errors_at_position(
      static_cast<std::size_t>(total_symbols), 0);
  std::array<long, kNumDataSubcarriers> errors_per_subcarrier{};
  long packets_counted = 0;

  const int packets = 400;
  for (int p = 0; p < packets; ++p) {
    Rng noise(static_cast<std::uint64_t>(p) * 13 + 7);
    const CxVec received = channel.transmit(tx_samples, nv, noise);
    const FrontEndResult fe = receiver_front_end(received);
    if (!fe.signal) continue;
    const DecodeResult decode =
        decode_data_symbols(fe, mcs, static_cast<int>(psdu.size()));
    ++packets_counted;
    for (int s = 0; s < frame.num_symbols(); ++s) {
      const auto sym = static_cast<std::size_t>(s);
      for (int j = 0; j < kNumDataSubcarriers; ++j) {
        const auto idx = static_cast<std::size_t>(j);
        const Cx decided =
            hard_decision(decode.eq_data[sym][idx], mcs.modulation);
        if (std::abs(decided - frame.data_grid[sym][idx]) > 1e-9) {
          ++errors_at_position[sym * kNumDataSubcarriers + idx];
          ++errors_per_subcarrier[idx];
        }
      }
    }
  }

  std::printf("(a) frequency of symbol errors, first 1000 positions\n");
  std::printf("%10s %12s\n", "position", "freq");
  for (int pos = 0; pos < 1000 && pos < total_symbols; ++pos) {
    std::printf("%10d %12.4f\n", pos + 1,
                static_cast<double>(
                    errors_at_position[static_cast<std::size_t>(pos)]) /
                    packets_counted);
  }

  std::printf("\n(b) symbol error rate per data subcarrier\n");
  std::printf("%10s %12s\n", "subcarrier", "SER");
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    std::printf("%10d %12.4f\n", j + 1,
                static_cast<double>(
                    errors_per_subcarrier[static_cast<std::size_t>(j)]) /
                    (packets_counted * frame.num_symbols()));
  }

  // Quantify the period-48 structure: correlation between the error
  // profile of consecutive 48-symbol windows.
  double corr_num = 0.0, corr_a = 0.0, corr_b = 0.0;
  for (int pos = 0; pos + kNumDataSubcarriers < total_symbols; ++pos) {
    const double x = static_cast<double>(
        errors_at_position[static_cast<std::size_t>(pos)]);
    const double y = static_cast<double>(
        errors_at_position[static_cast<std::size_t>(pos) +
                           kNumDataSubcarriers]);
    corr_num += x * y;
    corr_a += x * x;
    corr_b += y * y;
  }
  const double periodicity =
      corr_a > 0 && corr_b > 0 ? corr_num / std::sqrt(corr_a * corr_b) : 0.0;
  std::printf(
      "\nperiod-48 correlation of the error profile: %.3f\n"
      "Paper shape: errors concentrate at fixed positions repeating every\n"
      "48 symbols (one OFDM symbol), i.e. on the weak data subcarriers.\n",
      periodicity);
  return 0;
}
