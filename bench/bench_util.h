// Shared helpers for the figure-reproduction benches: the legacy header
// printer plus the common CLI (--threads/--trials/--json/--seed/--trace/
// --flight-dir, and the sweep-fabric flags --fabric/--shard-spec) for
// benches migrated onto the runner subsystem (src/runner/).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "obs/flight/flight.h"
#include "obs/obs.h"
#include "runner/executor.h"

namespace silence::bench {

inline void print_header(const char* figure, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s: %s\n", figure, description);
  std::printf("=============================================================\n");
}

// Options shared by every runner-based bench.
struct BenchArgs {
  int threads = 0;         // --threads N   (0 = hardware concurrency)
  int trials = 0;          // --trials N    (0 = the bench's default)
  std::uint64_t seed = 1;  // --seed S      (sweep base seed)
  bool json = false;       // --json [PATH] (write structured results)
  std::string json_path;   // resolved path; default results/<bench>.json
  std::string trace_path;  // --trace FILE  (Chrome trace-event JSON)
  std::string flight_dir;  // --flight-dir DIR (anomaly dump directory)
  std::size_t flight_limit = 32;  // --flight-limit N (max dumps per run)
  // Sweep fabric (src/fabric/): supervisor side.
  int fabric_workers = 0;      // --fabric N        (>1 = worker processes)
  int fabric_shards = 0;       // --fabric-shards M (0 = one per worker)
  std::string fabric_spool;    // --fabric-spool DIR
  double fabric_timeout = 0.0; // --fabric-timeout SEC (0 = none)
  int fabric_retries = 2;      // --fabric-retries N (retries per shard)
  // Worker side (the supervisor passes these when re-execing us).
  std::string shard_spec;      // --shard-spec <sweep>:<i>/<n>:<b>-<e>
  std::string shard_out;       // --shard-out FILE
  std::string self;            // argv[0], the re-exec fallback
};

// A bench-specific flag rides along in parse_bench_args: `flag` takes
// one value (unless `takes_value` is false, for boolean switches),
// `help` is a usage line, `parse` receives the value ("" for switches).
// A bench that shards over the fabric must append its extra flags to
// FabricConfig::passthrough_args itself so workers rebuild the same grid.
struct ExtraFlag {
  const char* flag;
  const char* help;
  std::function<void(const char* value)> parse;
  bool takes_value = true;
};

// Parses the shared flags; exits with a usage message on --help or any
// unknown/malformed argument. `bench_name` names the default JSON path.
inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const char* bench_name,
                                  const std::vector<ExtraFlag>& extras = {}) {
  const auto usage = [&](int code) {
    std::printf(
        "usage: %s [--threads N] [--trials N] [--seed S] [--json [PATH]]\n"
        "          [--trace FILE] [--flight-dir DIR] [--flight-limit N]\n"
        "          [--fabric N] [--fabric-shards M] [--fabric-spool DIR]\n"
        "          [--fabric-timeout SEC] [--fabric-retries N]\n"
        "  --threads N   worker threads (default: all hardware threads)\n"
        "  --trials N    Monte-Carlo trials per sweep point\n"
        "  --seed S      base seed for deterministic trial seeding\n"
        "  --json [PATH] also write results/%s.json (or PATH) plus\n"
        "                .timing.json, .metrics.json and .health.json\n"
        "                sidecars\n"
        "  --trace FILE  write a Chrome/Perfetto trace (spans for every\n"
        "                PHY/CoS stage + embedded metrics snapshot)\n"
        "  --flight-dir DIR    arm the flight recorder: anomalous trials\n"
        "                (CRC fail, control miss, false alarm) dump replayable\n"
        "                artifacts into DIR (replay with tools/silence_diag)\n"
        "  --flight-limit N    cap the dump count per run (default 32)\n"
        "  --fabric N    shard the sweep over N worker processes; results\n"
        "                are byte-identical to the single-process run\n"
        "  --fabric-shards M   shards per sweep (default: one per worker)\n"
        "  --fabric-spool DIR  shard artifact spool (default: a temp dir)\n"
        "  --fabric-timeout SEC  kill + retry a worker after SEC seconds\n"
        "  --fabric-retries N  retries per shard before giving up (default 2)\n"
        "  --shard-spec/--shard-out    internal: run one shard (set by the\n"
        "                supervisor when it re-execs this binary)\n",
        argv[0], bench_name);
    for (const ExtraFlag& extra : extras) {
      std::printf("  %s  %s\n", extra.flag, extra.help);
    }
    std::exit(code);
  };
  const auto numeric_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
      usage(2);
    }
    return argv[++i];
  };

  BenchArgs args;
  args.self = argv[0];
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage(0);
    } else if (!std::strcmp(argv[i], "--threads")) {
      args.threads = std::atoi(numeric_value(i));
    } else if (!std::strcmp(argv[i], "--trials")) {
      args.trials = std::atoi(numeric_value(i));
    } else if (!std::strcmp(argv[i], "--seed")) {
      args.seed = std::strtoull(numeric_value(i), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--json")) {
      args.json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.json_path = argv[++i];
      }
    } else if (!std::strcmp(argv[i], "--trace")) {
      args.trace_path = numeric_value(i);
    } else if (!std::strcmp(argv[i], "--flight-dir")) {
      args.flight_dir = numeric_value(i);
    } else if (!std::strcmp(argv[i], "--flight-limit")) {
      args.flight_limit =
          static_cast<std::size_t>(std::strtoull(numeric_value(i), nullptr, 10));
    } else if (!std::strcmp(argv[i], "--fabric")) {
      args.fabric_workers = std::atoi(numeric_value(i));
    } else if (!std::strcmp(argv[i], "--fabric-shards")) {
      args.fabric_shards = std::atoi(numeric_value(i));
    } else if (!std::strcmp(argv[i], "--fabric-spool")) {
      args.fabric_spool = numeric_value(i);
    } else if (!std::strcmp(argv[i], "--fabric-timeout")) {
      args.fabric_timeout = std::strtod(numeric_value(i), nullptr);
    } else if (!std::strcmp(argv[i], "--fabric-retries")) {
      args.fabric_retries = std::atoi(numeric_value(i));
    } else if (!std::strcmp(argv[i], "--shard-spec")) {
      args.shard_spec = numeric_value(i);
    } else if (!std::strcmp(argv[i], "--shard-out")) {
      args.shard_out = numeric_value(i);
    } else {
      bool matched = false;
      for (const ExtraFlag& extra : extras) {
        if (!std::strcmp(argv[i], extra.flag)) {
          extra.parse(extra.takes_value ? numeric_value(i) : "");
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
        usage(2);
      }
    }
  }
  if (args.json && args.json_path.empty()) {
    args.json_path = std::string("results/") + bench_name + ".json";
  }
  if (!args.trace_path.empty()) {
#if SILENCE_OBS_ON
    silence::obs::Tracer::global().start();
#else
    std::fprintf(stderr,
                 "%s: built with SILENCE_OBS=OFF; --trace has no spans to "
                 "record and is ignored\n",
                 argv[0]);
    args.trace_path.clear();
#endif
  }
  if (!args.flight_dir.empty()) {
#if SILENCE_OBS_ON
    silence::obs::flight::DumpRouter::global().configure(args.flight_dir,
                                                         args.flight_limit);
#else
    std::fprintf(stderr,
                 "%s: built with SILENCE_OBS=OFF; --flight-dir has no events "
                 "to record and is ignored\n",
                 argv[0]);
    args.flight_dir.clear();
#endif
  }
  return args;
}

// Builds the FabricConfig for a bench from its parsed CLI flags. The
// passthrough args make every worker rebuild the identical grid
// (--seed/--trials) while splitting the requested thread budget evenly
// across workers, so `--fabric N` uses roughly the same CPU as the
// single-process run it must reproduce.
inline silence::fabric::FabricConfig fabric_config(const BenchArgs& args) {
  silence::fabric::FabricConfig config;
  config.workers = args.fabric_workers;
  config.shard_count = args.fabric_shards;
  config.spool_dir = args.fabric_spool;
  config.self = silence::fabric::self_executable_path(args.self);
  config.supervisor.timeout_seconds = args.fabric_timeout;
  config.supervisor.max_attempts = std::max(0, args.fabric_retries) + 1;
  if (!args.shard_spec.empty()) {
    config.shard = silence::fabric::ShardSpec::parse(args.shard_spec);
  }
  config.shard_out = args.shard_out;
  const int threads = silence::runner::resolve_threads(args.threads);
  const int per_worker =
      std::max(1, threads / std::max(1, args.fabric_workers));
  config.passthrough_args = {"--seed", std::to_string(args.seed),
                             "--threads", std::to_string(per_worker)};
  if (args.trials > 0) {
    config.passthrough_args.push_back("--trials");
    config.passthrough_args.push_back(std::to_string(args.trials));
  }
  return config;
}

// Call once after the sweep (before returning from main): writes the
// Chrome trace requested with --trace and reports flight-recorder dump
// activity. No-op otherwise.
inline void finish_observability(const BenchArgs& args) {
#if SILENCE_OBS_ON
  if (!args.flight_dir.empty()) {
    auto& router = silence::obs::flight::DumpRouter::global();
    std::printf("flight recorder: %zu anomaly dump(s) in %s", router.dumped(),
                args.flight_dir.c_str());
    if (router.suppressed() > 0) {
      std::printf(" (%zu suppressed by --flight-limit)", router.suppressed());
    }
    std::printf("\n");
  }
  if (args.trace_path.empty()) return;
  auto& tracer = silence::obs::Tracer::global();
  const std::size_t events = tracer.event_count();
  const std::size_t dropped = tracer.dropped();
  tracer.write(args.trace_path);
  std::printf("trace written to %s (%zu events%s) — open in "
              "ui.perfetto.dev or chrome://tracing\n",
              args.trace_path.c_str(), events,
              dropped > 0
                  ? (", " + std::to_string(dropped) + " dropped").c_str()
                  : "");
#else
  (void)args;
#endif
}

}  // namespace silence::bench
