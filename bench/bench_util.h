// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

namespace silence::bench {

inline void print_header(const char* figure, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s: %s\n", figure, description);
  std::printf("=============================================================\n");
}

}  // namespace silence::bench
