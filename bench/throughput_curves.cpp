// The paper's headline promise: "the transmission of free control
// messages does not harm the original data throughput". This bench
// sweeps measured SNR and compares data goodput with no CoS, with CoS at
// the calibrated control-rate table, and with CoS deliberately overdriven
// to 4x the table rate (showing why the rate controller matters).
#include <cstdio>

#include "bench_util.h"
#include "core/control_rate.h"
#include "mac/timing.h"
#include "sim/session.h"

using namespace silence;

namespace {

struct Goodput {
  double prr = 0.0;
  double mbps = 0.0;
  double control_kbps = 0.0;
};

constexpr int kPacketsPerPoint = 40;

Goodput run_point(double measured_snr_db, int control_rate_multiplier) {
  Goodput result;
  int ok = 0;
  double airtime_s = 0.0;
  std::size_t control_bits = 0;
  for (std::uint64_t seed = 1; seed <= kPacketsPerPoint; ++seed) {
    LinkConfig lc;
    lc.snr_db = measured_snr_db;
    lc.snr_is_measured = true;
    lc.channel_seed = seed;
    lc.noise_seed = seed * 41;
    Link link(lc);

    SessionConfig config;
    if (control_rate_multiplier == 0) {
      config.control_rate_override = 0;
    } else if (control_rate_multiplier > 1) {
      config.control_rate_override =
          control_rate_multiplier * select_control_rate(measured_snr_db);
    }
    CosSession session(link, config);
    Rng rng(seed * 97);
    const Bytes psdu = make_test_psdu(1024, rng);
    // Bootstrap the subcarrier selection, then measure one packet.
    session.send_packet(psdu, rng.bits(16));
    const PacketReport report = session.send_packet(psdu, rng.bits(4000));
    ok += report.data_ok;
    airtime_s += 1e-6 * (kSifsUs + kDifsUs) +
                 (16e-6 + 4e-6) +  // preamble + SIGNAL
                 symbols_for_psdu(psdu.size(), *report.mcs) * 4e-6;
    if (report.data_ok) {
      control_bits += report.control_bits_correct;
    }
  }
  result.prr = static_cast<double>(ok) / kPacketsPerPoint;
  result.mbps = ok * 1024.0 * 8.0 / (airtime_s * 1e6);
  result.control_kbps = control_bits / airtime_s / 1000.0;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Throughput", "data goodput with and without CoS vs measured SNR");
  std::printf("%8s %6s | %8s %8s | %8s %8s %10s | %8s %8s\n", "snr_dB",
              "rate", "plainPRR", "plainMbps", "cosPRR", "cosMbps",
              "ctrl_kbps", "4x_PRR", "4x_Mbps");
  for (double snr = 6.0; snr <= 26.0; snr += 2.0) {
    const Goodput plain = run_point(snr, 0);
    const Goodput cos_run = run_point(snr, 1);
    const Goodput overdriven = run_point(snr, 4);
    std::printf("%8.0f %6d | %8.2f %8.2f | %8.2f %8.2f %10.1f | %8.2f %8.2f\n",
                snr, select_mcs_by_snr(snr).data_rate_mbps, plain.prr,
                plain.mbps, cos_run.prr, cos_run.mbps, cos_run.control_kbps,
                overdriven.prr, overdriven.mbps);
  }
  std::printf(
      "\nReading: at the calibrated control rate, CoS goodput tracks the\n"
      "no-CoS baseline while delivering the control stream on the side;\n"
      "overdriving the silence rate beyond the table eats into PRR —\n"
      "exactly the trade the paper's rate controller exists to manage.\n");
  return 0;
}
