// The paper's headline promise: "the transmission of free control
// messages does not harm the original data throughput". This bench
// sweeps measured SNR and compares data goodput with no CoS, with CoS at
// the calibrated control-rate table, and with CoS deliberately overdriven
// to 4x the table rate (showing why the rate controller matters).
//
// Runner-based: each Monte-Carlo trial simulates one packet seed under
// all three configurations (same channel and noise realizations), and
// trials fan out across the thread pool with (base_seed, point, trial)
// derived seeds — results are bit-identical at any --threads value.
#include <cstdio>

#include "bench_util.h"
#include "core/control_rate.h"
#include "mac/timing.h"
#include "runner/sinks.h"
#include "runner/sweep.h"
#include "sim/session.h"

using namespace silence;

namespace {

constexpr int kDefaultPacketsPerPoint = 40;

// Goodput counters for one configuration; mergeable across trials.
struct GoodputCounts {
  std::size_t packets = 0;
  std::size_t packets_ok = 0;
  double airtime_s = 0.0;
  std::size_t control_bits = 0;

  GoodputCounts& operator+=(const GoodputCounts& o) {
    packets += o.packets;
    packets_ok += o.packets_ok;
    airtime_s += o.airtime_s;
    control_bits += o.control_bits;
    return *this;
  }
  double prr() const {
    return packets ? static_cast<double>(packets_ok) / packets : 0.0;
  }
  double mbps() const {
    return airtime_s > 0.0 ? packets_ok * 1024.0 * 8.0 / (airtime_s * 1e6)
                           : 0.0;
  }
  double control_kbps() const {
    return airtime_s > 0.0 ? control_bits / airtime_s / 1000.0 : 0.0;
  }
};

struct TrialCounts {
  GoodputCounts plain;       // control rate forced to zero
  GoodputCounts calibrated;  // the paper's SNR -> R_m table
  GoodputCounts overdriven;  // 4x the table rate

  TrialCounts& operator+=(const TrialCounts& o) {
    plain += o.plain;
    calibrated += o.calibrated;
    overdriven += o.overdriven;
    return *this;
  }
};

// One measured packet under one configuration. `control_rate_multiplier`
// 0 disables CoS, 1 uses the calibrated table, >1 overdrives it.
GoodputCounts run_config(double measured_snr_db, int control_rate_multiplier,
                         std::uint64_t seed) {
  GoodputCounts counts;
  LinkConfig lc;
  lc.snr_db = measured_snr_db;
  lc.snr_is_measured = true;
  lc.channel_seed = runner::substream_seed(seed, 0);
  lc.noise_seed = runner::substream_seed(seed, 1);
  Link link(lc);

  SessionConfig config;
  if (control_rate_multiplier == 0) {
    config.control_rate_override = 0;
  } else if (control_rate_multiplier > 1) {
    config.control_rate_override =
        control_rate_multiplier * select_control_rate(measured_snr_db);
  }
  CosSession session(link, config);
  Rng rng(runner::substream_seed(seed, 2));
  const Bytes psdu = make_test_psdu(1024, rng);
  // Bootstrap the subcarrier selection, then measure one packet.
  session.send_packet(psdu, rng.bits(16));
  const PacketReport report = session.send_packet(psdu, rng.bits(4000));
  counts.packets = 1;
  counts.packets_ok = report.data_ok ? 1 : 0;
  counts.airtime_s = 1e-6 * (kSifsUs + kDifsUs) +
                     (16e-6 + 4e-6) +  // preamble + SIGNAL
                     symbols_for_psdu(psdu.size(), *report.mcs) * 4e-6;
  if (report.data_ok) {
    counts.control_bits = report.control_bits_correct;
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "throughput_curves");
  const int packets =
      args.trials > 0 ? args.trials : kDefaultPacketsPerPoint;

  runner::SweepGrid<double> grid;  // points: measured SNR in dB
  grid.base_seed = args.seed;
  grid.trials = static_cast<std::size_t>(packets);
  for (double snr = 6.0; snr <= 26.0; snr += 2.0) {
    grid.points.push_back(snr);
  }

  const auto outcome = runner::run_sweep(
      grid, {.threads = args.threads, .chunk = 4},
      [](const double& snr, const runner::TrialContext& ctx) {
        TrialCounts counts;
        counts.plain = run_config(snr, 0, ctx.seed);
        counts.calibrated = run_config(snr, 1, ctx.seed);
        counts.overdriven = run_config(snr, 4, ctx.seed);
        return counts;
      });

  runner::SweepReport report;
  report.bench = "throughput_curves";
  report.title = "Throughput";
  report.description =
      "data goodput with and without CoS vs measured SNR";
  report.grid.set("snr_db", runner::Json::Object{{"start", 6.0},
                                                 {"stop", 26.0},
                                                 {"step", 2.0}});
  report.grid.set("packets_per_point", packets);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"snr_dB", 8, 0},     {"rate_mbps", 10, -1},
                    {"plainPRR", 10, 2},  {"plainMbps", 10, 2},
                    {"cosPRR", 8, 2},     {"cosMbps", 8, 2},
                    {"ctrl_kbps", 10, 1}, {"4x_PRR", 8, 2},
                    {"4x_Mbps", 8, 2}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const double snr = grid.points[i];
    const TrialCounts& counts = outcome.point_results[i];
    report.add_row({snr, select_mcs_by_snr(snr).data_rate_mbps,
                    counts.plain.prr(), counts.plain.mbps(),
                    counts.calibrated.prr(), counts.calibrated.mbps(),
                    counts.calibrated.control_kbps(),
                    counts.overdriven.prr(), counts.overdriven.mbps()});
  }
  report.notes = {
      "",
      "Reading: at the calibrated control rate, CoS goodput tracks the",
      "no-CoS baseline while delivering the control stream on the side;",
      "overdriving the silence rate beyond the table eats into PRR —",
      "exactly the trade the paper's rate controller exists to manage."};

  runner::TableSink table;
  table.write(report);
  if (args.json) {
    runner::JsonSink(args.json_path).write(report);
  }
  bench::finish_observability(args);
  return 0;
}
