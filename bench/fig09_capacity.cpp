// Reproduces paper Fig. 9: the maximum number of silence symbols per
// second (R_m) CoS can insert while keeping the packet reception rate at
// the 99.3% target, as a function of the measured SNR. Also runs the
// random-placement ablation (DESIGN.md §4.1): the same budget placed on
// random subcarriers instead of the weakest ones.
//
// Method mirrors the paper's: 1024-byte packets sent back-to-back, data
// rate chosen by the SNR-based adaptation, silence-insertion rate R
// increased until the PRR target breaks; the largest passing R is R_m.
//
// Runner-based: one sweep task per (SNR, placement) pair, fanned across
// the thread pool; all per-packet seeds derive from (base_seed, SNR
// point, packet), so output is bit-identical at any --threads value.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "core/cos_link.h"
#include "runner/sinks.h"
#include "runner/sweep.h"
#include "sim/link.h"
#include "sim/stats.h"

using namespace silence;

namespace {

constexpr int kPacketOctets = 1024;
constexpr int kDefaultPacketsPerPoint = 150;

constexpr double kSnrStartDb = 5.0;
constexpr double kSnrStopDb = 25.0;
constexpr double kSnrStepDb = 1.0;

enum class Placement { kWeakest, kRandom };

// One sweep task: a single placement policy at a single measured SNR.
struct SweepPoint {
  std::size_t snr_index = 0;  // shared by both placements of one SNR
  double measured_snr_db = 0.0;
  Placement placement = Placement::kWeakest;
};

struct PointResult {
  bool feasible = false;  // PRR target met with zero silences
  int budget = 0;         // largest passing silences-per-packet
};

// Control subcarriers for one packet: the `count` weakest (by true
// channel gain — the EVM feedback approximates this genie) or a random
// subset of the same size.
std::vector<int> pick_subcarriers(const FadingChannel& channel, int count,
                                  Placement placement, Rng& rng) {
  std::vector<int> order(kNumDataSubcarriers);
  std::iota(order.begin(), order.end(), 0);
  if (placement == Placement::kRandom) {
    std::shuffle(order.begin(), order.end(), rng.engine());
  } else {
    const auto response = channel.frequency_response();
    const auto bins = data_subcarrier_bins();
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return std::norm(response[static_cast<std::size_t>(
                 bins[static_cast<std::size_t>(a)])]) <
             std::norm(response[static_cast<std::size_t>(
                 bins[static_cast<std::size_t>(b)])]);
    });
  }
  order.resize(static_cast<std::size_t>(count));
  return order;
}

// True when `silences_per_packet` sustains the PRR target at this
// measured SNR. Each packet sees a fresh channel realization pinned to
// the same NIC-measured SNR (the paper bins results by NIC SNR); the
// realizations derive from `stream_seed` and the packet index only, so
// every budget probed by the binary search sees identical channels.
bool prr_holds(double measured_snr_db, int silences_per_packet,
               const Mcs& mcs, int num_symbols, Placement placement,
               int packets, int max_failures, std::uint64_t stream_seed) {
  const auto k = static_cast<std::size_t>(kDefaultBitsPerInterval);
  const std::size_t control_bits_count =
      silences_per_packet > 1
          ? (static_cast<std::size_t>(silences_per_packet) - 1) * k
          : 0;
  // Enough control subcarriers to host the expected interval spread.
  const int n_ctrl = std::clamp(
      static_cast<int>(silences_per_packet * 8.5 / num_symbols) + 1, 4,
      kNumDataSubcarriers);

  int failures = 0;
  for (int p = 0; p < packets; ++p) {
    const auto pu = static_cast<std::uint64_t>(p);
    const std::uint64_t channel_seed =
        runner::substream_seed(stream_seed, 2 * pu);
    Rng rng(runner::substream_seed(stream_seed, 2 * pu + 1));
    MultipathProfile profile;
    FadingChannel channel(profile, channel_seed);
    const double nv = noise_var_for_measured_snr(channel, measured_snr_db);

    CosTxConfig tx_config;
    tx_config.mcs = McsId::of(mcs);
    tx_config.control_subcarriers =
        pick_subcarriers(channel, n_ctrl, placement, rng);

    const Bytes psdu = make_test_psdu(kPacketOctets, rng);
    const Bits control = rng.bits(control_bits_count);
    const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
    const CxVec received = channel.transmit(tx.samples, nv, rng);

    CosRxConfig rx_config;
    rx_config.control_subcarriers = tx_config.control_subcarriers;
    const CosRxPacket rx = cos_receive(received, rx_config);
    // The paper's PRR criterion concerns the DATA packet: R_m asks how
    // many silences the channel code can absorb without destroying data
    // (control detection accuracy is Fig. 10's separate experiment).
    if (!rx.data_ok && ++failures > max_failures) return false;
  }
  return true;
}

// Largest silence budget per packet meeting the PRR target.
PointResult run_point(const SweepPoint& point, std::uint64_t base_seed,
                      std::uint64_t task_seed, int packets,
                      int max_failures) {
  const Mcs& mcs = select_mcs_by_snr(point.measured_snr_db);
  const int n_sym = symbols_for_psdu(kPacketOctets, mcs);

  PointResult result;
  // Feasibility is a property of the SNR alone (budget 0 ignores the
  // placement), so both placement tasks of one SNR probe it with the
  // same SNR-derived seed and necessarily agree.
  const std::uint64_t feasibility_seed =
      runner::trial_seed(base_seed, point.snr_index, ~std::uint64_t{0});
  result.feasible =
      prr_holds(point.measured_snr_db, 0, mcs, n_sym, point.placement,
                packets, max_failures, feasibility_seed);
  if (!result.feasible) return result;

  // Grid ceiling: average interval spread over all 48 subcarriers.
  const int grid_cap =
      static_cast<int>(n_sym * kNumDataSubcarriers / 8.5);
  int lo = 0, hi = grid_cap;
  if (!prr_holds(point.measured_snr_db, 1, mcs, n_sym, point.placement,
                 packets, max_failures, task_seed)) {
    return result;
  }
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (prr_holds(point.measured_snr_db, mid, mcs, n_sym, point.placement,
                  packets, max_failures, task_seed)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  result.budget = lo;
  return result;
}

// Shard-artifact codec (fabric/fabric.h): both fields are integers, so
// the round trip is trivially exact.
runner::Json point_to_json(const PointResult& r) {
  runner::Json row = runner::Json::object();
  row.set("feasible", r.feasible);
  row.set("budget", r.budget);
  return row;
}

PointResult point_from_json(const runner::Json& row) {
  PointResult r;
  r.feasible = row.find("feasible")->as_bool();
  r.budget = static_cast<int>(row.find("budget")->as_int());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "fig09_capacity");
  const int packets =
      args.trials > 0 ? args.trials : kDefaultPacketsPerPoint;
  // Scale the failure allowance with the packet count so --trials keeps
  // targeting the paper's ~99.3% PRR (1 failure allowed per 150).
  const int max_failures = std::max(1, packets / kDefaultPacketsPerPoint);

  runner::SweepGrid<SweepPoint> grid;
  grid.base_seed = args.seed;
  grid.trials = 1;  // each task is one adaptive budget search
  std::size_t snr_index = 0;
  for (double snr = kSnrStartDb; snr <= kSnrStopDb; snr += kSnrStepDb) {
    for (const Placement placement : {Placement::kWeakest, Placement::kRandom}) {
      grid.points.push_back({snr_index, snr, placement});
    }
    ++snr_index;
  }

  fabric::Fabric fab(bench::fabric_config(args));
  const auto outcome = fab.run(
      "fig09_capacity", grid, {.threads = args.threads, .chunk = 1},
      [&](const SweepPoint& point, const runner::TrialContext& ctx) {
        return run_point(point, grid.base_seed, ctx.seed, packets,
                         max_failures);
      },
      point_to_json, point_from_json, [](PointResult&, PointResult&&) {});
  if (fab.worker_mode()) return fab.finish_worker();

  runner::SweepReport report;
  report.bench = "fig09_capacity";
  report.title = "Fig. 9";
  report.description =
      "max silence symbols/sec (R_m) vs measured SNR, PRR target 99.3%";
  report.grid.set("snr_db",
                  runner::Json::Object{{"start", kSnrStartDb},
                                       {"stop", kSnrStopDb},
                                       {"step", kSnrStepDb}});
  report.grid.set("packet_octets", kPacketOctets);
  report.grid.set("packets_per_point", packets);
  report.grid.set("max_failures", max_failures);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"measured_dB", 12, 1}, {"rate_mbps", 10, -1},
                    {"Rm_weakest", 14, 0},  {"Rm_random", 14, 0},
                    {"ctrl_kbps", 14, 1}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;

  // Pair up the two placements of each SNR (adjacent grid points).
  for (std::size_t i = 0; i + 1 < grid.points.size(); i += 2) {
    const SweepPoint& point = grid.points[i];
    const PointResult& weak = outcome.point_results[i];
    const PointResult& random = outcome.point_results[i + 1];
    const Mcs& mcs = select_mcs_by_snr(point.measured_snr_db);
    const int n_sym = symbols_for_psdu(kPacketOctets, mcs);
    const double airtime = kPreambleDurationSec + kSignalDurationSec +
                           n_sym * kSymbolDurationSec;
    // Feasibility: right at a region floor even a CoS-free packet can
    // miss the 99.3% PRR target; mark such points instead of implying
    // CoS caused the failure.
    if (!weak.feasible) {
      report.add_row({point.measured_snr_db, mcs.data_rate_mbps, nullptr,
                      nullptr, nullptr});
      continue;
    }
    const double rm_weak = weak.budget / airtime;
    const double rm_random = random.budget / airtime;
    report.add_row({point.measured_snr_db, mcs.data_rate_mbps, rm_weak,
                    rm_random, rm_weak * kDefaultBitsPerInterval / 1000.0});
  }
  report.notes = {
      "('-' rows: PRR target unmet even without CoS at that region floor)",
      "",
      "Paper shape: R_m climbs with SNR inside each rate region and",
      "saturates at a redundancy bound; bounds shrink with modulation",
      "order (QPSK > 16QAM > 64QAM at equal code rate) and code rate",
      "(1/2 > 3/4 at equal modulation); weakest-subcarrier placement",
      "sustains a higher R_m than random placement near region floors."};

  runner::TableSink table;
  table.write(report);
  if (args.json) {
    runner::JsonSink(args.json_path).write(report);
    if (fab.fabric_mode()) fab.write_sidecars(args.json_path);
  }
  bench::finish_observability(args);
  return 0;
}
