// Reproduces paper Fig. 9: the maximum number of silence symbols per
// second (R_m) CoS can insert while keeping the packet reception rate at
// the 99.3% target, as a function of the measured SNR. Also runs the
// random-placement ablation (DESIGN.md §4.1): the same budget placed on
// random subcarriers instead of the weakest ones.
//
// Method mirrors the paper's: 1024-byte packets sent back-to-back, data
// rate chosen by the SNR-based adaptation, silence-insertion rate R
// increased until the PRR target breaks; the largest passing R is R_m.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "core/cos_link.h"
#include "sim/link.h"
#include "sim/stats.h"

using namespace silence;

namespace {

constexpr int kPacketOctets = 1024;
constexpr int kPacketsPerPoint = 150;
constexpr int kMaxFailures = 1;  // 149/150 ~ the paper's 99.3% PRR target

enum class Placement { kWeakest, kRandom };

// Control subcarriers for one packet: the `count` weakest (by true
// channel gain — the EVM feedback approximates this genie) or a random
// subset of the same size.
std::vector<int> pick_subcarriers(const FadingChannel& channel, int count,
                                  Placement placement, Rng& rng) {
  std::vector<int> order(kNumDataSubcarriers);
  std::iota(order.begin(), order.end(), 0);
  if (placement == Placement::kRandom) {
    std::shuffle(order.begin(), order.end(), rng.engine());
  } else {
    const auto response = channel.frequency_response();
    const auto bins = data_subcarrier_bins();
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return std::norm(response[static_cast<std::size_t>(
                 bins[static_cast<std::size_t>(a)])]) <
             std::norm(response[static_cast<std::size_t>(
                 bins[static_cast<std::size_t>(b)])]);
    });
  }
  order.resize(static_cast<std::size_t>(count));
  return order;
}

// True when `silences_per_packet` sustains the PRR target at this
// measured SNR. Each packet sees a fresh channel realization pinned to
// the same NIC-measured SNR (the paper bins results by NIC SNR).
bool prr_holds(double measured_snr_db, int silences_per_packet,
               const Mcs& mcs, int num_symbols, Placement placement) {
  const auto k = static_cast<std::size_t>(kDefaultBitsPerInterval);
  const std::size_t control_bits_count =
      silences_per_packet > 1
          ? (static_cast<std::size_t>(silences_per_packet) - 1) * k
          : 0;
  // Enough control subcarriers to host the expected interval spread.
  const int n_ctrl = std::clamp(
      static_cast<int>(silences_per_packet * 8.5 / num_symbols) + 1, 4,
      kNumDataSubcarriers);

  int failures = 0;
  for (int p = 0; p < kPacketsPerPoint; ++p) {
    const auto seed = static_cast<std::uint64_t>(p) + 1;
    Rng rng(seed * 7919 + static_cast<std::uint64_t>(placement == Placement::kRandom));
    MultipathProfile profile;
    FadingChannel channel(profile, seed);
    const double nv = noise_var_for_measured_snr(channel, measured_snr_db);

    CosTxConfig tx_config;
    tx_config.mcs = &mcs;
    tx_config.control_subcarriers =
        pick_subcarriers(channel, n_ctrl, placement, rng);

    const Bytes psdu = make_test_psdu(kPacketOctets, rng);
    const Bits control = rng.bits(control_bits_count);
    const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
    const CxVec received = channel.transmit(tx.samples, nv, rng);

    CosRxConfig rx_config;
    rx_config.control_subcarriers = tx_config.control_subcarriers;
    const CosRxPacket rx = cos_receive(received, rx_config);
    // The paper's PRR criterion concerns the DATA packet: R_m asks how
    // many silences the channel code can absorb without destroying data
    // (control detection accuracy is Fig. 10's separate experiment).
    if (!rx.data_ok && ++failures > kMaxFailures) return false;
  }
  return true;
}

// Largest silence budget per packet meeting the PRR target.
int find_max_budget(double measured_snr_db, const Mcs& mcs, int num_symbols,
                    Placement placement) {
  // Grid ceiling: average interval spread over all 48 subcarriers.
  const int grid_cap =
      static_cast<int>(num_symbols * kNumDataSubcarriers / 8.5);
  int lo = 0, hi = grid_cap;
  if (!prr_holds(measured_snr_db, 1, mcs, num_symbols, placement)) return 0;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (prr_holds(measured_snr_db, mid, mcs, num_symbols, placement)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 9",
      "max silence symbols/sec (R_m) vs measured SNR, PRR target 99.3%");
  std::printf("%12s %10s %14s %14s %14s\n", "measured_dB", "rate",
              "Rm_weakest", "Rm_random", "ctrl_kbps");

  for (double snr = 5.0; snr <= 25.0; snr += 1.0) {
    const Mcs& mcs = select_mcs_by_snr(snr);
    const int n_sym = symbols_for_psdu(kPacketOctets, mcs);
    const double airtime = kPreambleDurationSec + kSignalDurationSec +
                           n_sym * kSymbolDurationSec;

    // Feasibility: right at a region floor even a CoS-free packet can
    // miss the 99.3% PRR target; mark such points instead of implying
    // CoS caused the failure.
    if (!prr_holds(snr, 0, mcs, n_sym, Placement::kWeakest)) {
      std::printf("%12.1f %7d Mbps %14s %14s %14s\n", snr,
                  mcs.data_rate_mbps, "-", "-",
                  "(PRR unmet w/o CoS)");
      continue;
    }
    const int weak_budget =
        find_max_budget(snr, mcs, n_sym, Placement::kWeakest);
    const int random_budget =
        find_max_budget(snr, mcs, n_sym, Placement::kRandom);
    const double rm_weak = weak_budget / airtime;
    const double rm_random = random_budget / airtime;
    std::printf("%12.1f %7d Mbps %14.0f %14.0f %14.1f\n", snr,
                mcs.data_rate_mbps, rm_weak, rm_random,
                rm_weak * kDefaultBitsPerInterval / 1000.0);
  }
  std::printf(
      "\nPaper shape: R_m climbs with SNR inside each rate region and\n"
      "saturates at a redundancy bound; bounds shrink with modulation\n"
      "order (QPSK > 16QAM > 64QAM at equal code rate) and code rate\n"
      "(1/2 > 3/4 at equal modulation); weakest-subcarrier placement\n"
      "sustains a higher R_m than random placement near region floors.\n");
  return 0;
}
