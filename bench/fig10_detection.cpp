// Reproduces paper Fig. 10: accuracy of symbol-level energy detection.
//   (a) relative FFT magnitudes of one OFDM symbol with control
//       subcarriers [10..17], three of them silenced;
//   (b) false positive/negative probability vs detection threshold at a
//       measured SNR of 9.2 dB;
//   (c) false probabilities vs SNR with the adaptive (pilot-aided)
//       threshold, 1000 packets per point;
//   (d) false negative probability vs SNR with strong pulse interference.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "channel/interference.h"
#include "core/cos_link.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "sim/link.h"

using namespace silence;

namespace {

const std::vector<int> kControl = {9, 10, 11, 12, 13, 14, 15, 16};

struct FalseRates {
  double positive = 0.0;
  double negative = 0.0;
};

// LOS-dominant office profile matching the paper's lab links (their
// Fig. 5 EVM range implies no deep notches on the tested positions).
MultipathProfile office_profile() {
  MultipathProfile profile;
  profile.rician_k_linear = 10.0;
  profile.decay_taps = 1.5;
  return profile;
}

// Counts detector false positives/negatives over `packets` CoS packets.
// With `ground_truth_framing`, the known frame geometry is used even when
// SIGNAL fails to decode (the paper knows its fixed packet layout), so
// heavy interference does not bias the sample toward lightly-hit packets.
FalseRates measure(double measured_snr_db, int packets,
                   const DetectorConfig& detector,
                   const PulseInterferer* interferer = nullptr,
                   bool ground_truth_framing = false) {
  std::size_t active = 0, silent = 0, false_pos = 0, false_neg = 0;
  for (int p = 0; p < packets; ++p) {
    const auto seed = static_cast<std::uint64_t>(p) + 1;
    Rng rng(seed * 104729);
    const MultipathProfile profile = office_profile();
    FadingChannel channel(profile, seed);
    const double nv = noise_var_for_measured_snr(channel, measured_snr_db);

    CosTxConfig tx_config;
    tx_config.mcs = &mcs_for_rate(12);
    tx_config.control_subcarriers = kControl;
    const Bytes psdu = make_test_psdu(256, rng);
    const Bits control = rng.bits(60);
    const CosTxPacket tx = cos_transmit(psdu, control, tx_config);

    CxVec received = channel.transmit(tx.samples, nv, rng);
    if (interferer != nullptr) interferer->apply(received, rng);

    FrontEndResult fe = receiver_front_end(received);
    if (ground_truth_framing) {
      // Rebuild the per-symbol FFTs from the known frame geometry.
      fe.channel = estimate_channel(
          std::span(received).subspan(kStfSamples, kLtfSamples));
      fe.data_bins.clear();
      for (int s = 0; s < tx.frame.num_symbols(); ++s) {
        const auto offset =
            static_cast<std::size_t>(kPreambleSamples) +
            static_cast<std::size_t>(kSymbolSamples) *
                static_cast<std::size_t>(1 + s);
        fe.data_bins.push_back(time_to_bins(
            std::span(received).subspan(offset, kSymbolSamples)));
      }
      // A deployed receiver tracks its noise floor over many packets, so
      // a sudden interferer does not move the detection threshold; use
      // the long-term floor rather than this packet's pilot residuals
      // (which the pulses contaminate).
      fe.noise_var = freq_noise_var(nv);
    } else if (!fe.signal) {
      continue;
    }
    const SilenceMask detected = detect_silences(fe, kControl, detector);
    // A SIGNAL mis-decode (possible at very low SNR) yields the wrong
    // symbol count; skip such packets.
    if (detected.size() != tx.plan.mask.size()) continue;
    for (std::size_t s = 0; s < tx.plan.mask.size(); ++s) {
      for (int sc : kControl) {
        const auto idx = static_cast<std::size_t>(sc);
        if (tx.plan.mask[s][idx]) {
          ++silent;
          if (!detected[s][idx]) ++false_neg;
        } else {
          ++active;
          if (detected[s][idx]) ++false_pos;
        }
      }
    }
  }
  FalseRates rates;
  if (active) rates.positive = static_cast<double>(false_pos) / active;
  if (silent) rates.negative = static_cast<double>(false_neg) / silent;
  return rates;
}

void part_a() {
  std::printf("(a) relative FFT magnitudes, control subcarriers [10..17]\n");
  Rng rng(5);
  MultipathProfile profile;
  FadingChannel channel(profile, 77);
  const double nv = noise_var_for_measured_snr(channel, 15.0);

  CosTxConfig tx_config;
  tx_config.mcs = &mcs_for_rate(12);
  // Subcarriers 10, 11 and 17 silenced in the first symbol (paper's
  // figure): interval "0101" = 5 between positions 1 and 7.
  tx_config.control_subcarriers = {9, 10, 11, 12, 13, 14, 15, 16};
  const Bytes psdu = make_test_psdu(256, rng);
  const Bits control = {0, 0, 0, 0, 0, 1, 0, 1};  // intervals {0, 5}
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
  const CxVec received = channel.transmit(tx.samples, nv, rng);
  const FrontEndResult fe = receiver_front_end(received);
  if (!fe.signal) {
    std::printf("  (SIGNAL failed; rerun)\n");
    return;
  }
  const auto energies = data_bin_energies(fe.data_bins.front());
  const double peak = *std::max_element(energies.begin(), energies.end());
  std::printf("%10s %12s %10s\n", "subcarrier", "rel_magn", "state");
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    const bool silenced = tx.plan.mask[0][idx] != 0;
    std::printf("%10d %12.3f %10s\n", j + 1,
                std::sqrt(energies[idx] / peak),
                silenced ? "silence" : "active");
  }
}

void part_b() {
  std::printf(
      "\n(b) false probabilities vs detection threshold @ 9.2 dB measured\n");
  std::printf("%16s %12s %12s\n", "threshold_dB", "false_pos", "false_neg");
  // Thresholds swept relative to the unit-signal FFT scale; the noise
  // floor at 9.2 dB sits at 10^-0.92 ~ -9.2 dB.
  for (double thr_db = -30.0; thr_db <= 10.0; thr_db += 2.5) {
    DetectorConfig detector;
    detector.fixed_threshold = std::pow(10.0, thr_db / 10.0);
    const FalseRates rates = measure(9.2, 150, detector);
    std::printf("%16.1f %12.4f %12.4f\n", thr_db, rates.positive,
                rates.negative);
  }
}

void part_c() {
  std::printf(
      "\n(c) false probabilities vs SNR, adaptive pilot-aided threshold "
      "(1000 packets per point)\n");
  std::printf("%12s %12s %12s %12s %12s\n", "measured_dB", "false_pos",
              "false_neg", "fp_midpoint", "fn_midpoint");
  for (double snr : {3.2, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0}) {
    DetectorConfig noise_margin;
    noise_margin.mode = ThresholdMode::kNoiseMargin;
    const FalseRates rates = measure(snr, 1000, noise_margin);
    // This repo's per-subcarrier midpoint refinement, for comparison.
    DetectorConfig midpoint_config;
    midpoint_config.mode = ThresholdMode::kPerSubcarrierMidpoint;
    const FalseRates midpoint = measure(snr, 1000, midpoint_config);
    std::printf("%12.1f %12.4f %12.4f %12.4f %12.4f\n", snr, rates.positive,
                rates.negative, midpoint.positive, midpoint.negative);
  }
}

void part_d() {
  std::printf("\n(d) false negative vs SNR with strong pulse interference\n");
  std::printf("%12s %14s %14s\n", "measured_dB", "fn_interf", "fn_clean");
  const PulseInterferer strong{.symbol_hit_probability = 0.6,
                               .pulse_power = 1.0};
  for (double snr : {3.2, 6.0, 10.0, 14.0, 18.0, 20.0}) {
    const FalseRates with = measure(snr, 200, DetectorConfig{}, &strong,
                                    /*ground_truth_framing=*/true);
    const FalseRates without = measure(snr, 200, DetectorConfig{}, nullptr,
                                       /*ground_truth_framing=*/true);
    std::printf("%12.1f %14.4f %14.4f\n", snr, with.negative,
                without.negative);
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 10", "silence-symbol detection accuracy");
  part_a();
  part_b();
  part_c();
  part_d();
  std::printf(
      "\nPaper shape: (a) silenced subcarriers are clearly discernible;\n"
      "(b) high thresholds inflate false positives, low thresholds\n"
      "inflate false negatives; (c) with the adaptive threshold the\n"
      "false negative rate stays < 0.01 and the false positive rate only\n"
      "rises at very low SNR (~0.14 at 3.2 dB); (d) strong interference\n"
      "drives the false negative rate up dramatically.\n");
  return 0;
}
