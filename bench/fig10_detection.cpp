// Reproduces paper Fig. 10: accuracy of symbol-level energy detection.
//   (a) relative FFT magnitudes of one OFDM symbol with control
//       subcarriers [10..17], three of them silenced;
//   (b) false positive/negative probability vs detection threshold at a
//       measured SNR of 9.2 dB;
//   (c) false probabilities vs SNR with the adaptive (pilot-aided)
//       threshold, 1000 packets per point;
//   (d) false negative probability vs SNR with strong pulse interference.
//
// Runner-based: parts (b)-(d) fan individual packets across the thread
// pool as Monte-Carlo trials whose seeds derive from (base_seed, point,
// packet); per-packet detector counts merge with operator+=, so the
// false rates are bit-identical at any --threads value. The packet
// simulation itself is the canonical replayable trial from sim/trial.h —
// parts (b) and (d) run the full run_cos_trial() (detection + interval
// decode + EVD data decode), so `--flight-dir` captures any anomalous
// trial as a dump that tools/silence_diag replays bit-exactly; part (c)
// evaluates two detector variants against the SAME simulated packet and
// therefore shares simulate_cos_packet()/count_detection() directly.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "channel/interference.h"
#include "core/cos_link.h"
#include "phy/ofdm.h"
#include "runner/sinks.h"
#include "runner/sweep.h"
#include "sim/link.h"
#include "sim/trial.h"

using namespace silence;

namespace {

const std::vector<int> kControl = {9, 10, 11, 12, 13, 14, 15, 16};

// LOS-dominant office profile matching the paper's lab links (their
// Fig. 5 EVM range implies no deep notches on the tested positions).
MultipathProfile office_profile() {
  MultipathProfile profile;
  profile.rician_k_linear = 10.0;
  profile.decay_taps = 1.5;
  return profile;
}

// The common packet layout of every Fig. 10 sweep; each part adjusts the
// SNR, detector and interferer on top.
CosTrialSpec base_spec(double measured_snr_db) {
  CosTrialSpec spec;
  spec.measured_snr_db = measured_snr_db;
  spec.mcs = McsId::for_rate(12);
  spec.psdu_octets = 256;
  spec.control_bits = 60;
  spec.cos.control_subcarriers = kControl;
  spec.profile = office_profile();
  return spec;
}

void part_a() {
  std::printf("(a) relative FFT magnitudes, control subcarriers [10..17]\n");
  Rng rng(5);
  MultipathProfile profile;
  FadingChannel channel(profile, 77);
  const double nv = noise_var_for_measured_snr(channel, 15.0);

  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(12);
  // Subcarriers 10, 11 and 17 silenced in the first symbol (paper's
  // figure): interval "0101" = 5 between positions 1 and 7.
  tx_config.control_subcarriers = {9, 10, 11, 12, 13, 14, 15, 16};
  const Bytes psdu = make_test_psdu(256, rng);
  const Bits control = {0, 0, 0, 0, 0, 1, 0, 1};  // intervals {0, 5}
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
  const CxVec received = channel.transmit(tx.samples, nv, rng);
  const FrontEndResult fe = receiver_front_end(received);
  if (!fe.signal) {
    std::printf("  (SIGNAL failed; rerun)\n");
    return;
  }
  const auto energies = data_bin_energies(fe.data_bins.front());
  const double peak = *std::max_element(energies.begin(), energies.end());
  std::printf("%10s %12s %10s\n", "subcarrier", "rel_magn", "state");
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    const bool silenced = tx.plan.mask[0][idx] != 0;
    std::printf("%10d %12.3f %10s\n", j + 1,
                std::sqrt(energies[idx] / peak),
                silenced ? "silence" : "active");
  }
}

// Shard-artifact codecs (fabric/fabric.h): detector counts are plain
// unsigned tallies, shipped as compact 4-int arrays — exact round trip.
runner::Json detection_to_json(const DetectionCounts& c) {
  runner::Json row = runner::Json::array();
  row.push_back(static_cast<std::int64_t>(c.active));
  row.push_back(static_cast<std::int64_t>(c.silent));
  row.push_back(static_cast<std::int64_t>(c.false_pos));
  row.push_back(static_cast<std::int64_t>(c.false_neg));
  return row;
}

DetectionCounts detection_from_json(const runner::Json& row) {
  const runner::Json::Array& a = row.as_array();
  if (a.size() != 4) {
    throw std::runtime_error("DetectionCounts: expected 4 fields");
  }
  DetectionCounts c;
  c.active = static_cast<std::size_t>(a[0].as_int());
  c.silent = static_cast<std::size_t>(a[1].as_int());
  c.false_pos = static_cast<std::size_t>(a[2].as_int());
  c.false_neg = static_cast<std::size_t>(a[3].as_int());
  return c;
}

runner::SweepReport part_b(const bench::BenchArgs& args,
                           fabric::Fabric& fab) {
  const int packets = args.trials > 0 ? args.trials : 150;
  runner::SweepGrid<double> grid;  // points: threshold in dB
  grid.base_seed = runner::substream_seed(args.seed, 0xb);
  grid.trials = static_cast<std::size_t>(packets);
  for (double thr_db = -30.0; thr_db <= 10.0; thr_db += 2.5) {
    grid.points.push_back(thr_db);
  }

  const auto outcome = fab.run(
      "fig10_detection.b", grid, {.threads = args.threads, .chunk = 8},
      [&](const double& thr_db, const runner::TrialContext& ctx) {
        CosTrialSpec spec = base_spec(9.2);
        spec.cos.detector.fixed_threshold = std::pow(10.0, thr_db / 10.0);
        // Extreme thresholds make every trial "anomalous" by design;
        // only a CRC failure is worth a flight dump here.
        spec.dump_on_control_miss = false;
        spec.dump_on_false_alarm = false;
        return run_cos_trial(spec,
                             {.sweep = "fig10_detection.b",
                              .point_index = ctx.point_index,
                              .trial_index = ctx.trial_index},
                             ctx.seed)
            .detection;
      },
      detection_to_json, detection_from_json);

  runner::SweepReport report;
  report.bench = "fig10_detection.b";
  report.title = "Fig. 10(b)";
  report.description =
      "false probabilities vs detection threshold @ 9.2 dB measured";
  report.grid.set("measured_snr_db", 9.2);
  report.grid.set("packets_per_point", packets);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"threshold_dB", 16, 1},
                    {"false_pos", 12, 4},
                    {"false_neg", 12, 4}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  // Raw confusion totals (summed over every point) ride in the grid
  // metadata so the .health.json detector counters can be cross-checked
  // against the sweep's own tallies, count for count.
  DetectionCounts totals;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const DetectionCounts& counts = outcome.point_results[i];
    totals += counts;
    report.add_row({grid.points[i], counts.positive_rate(),
                    counts.negative_rate()});
  }
  report.grid.set("confusion_totals", detection_to_json(totals));
  return report;
}

// Part (c) evaluates two adaptive-threshold variants on the SAME packets.
struct AdaptiveCounts {
  DetectionCounts noise_margin;
  DetectionCounts midpoint;
  AdaptiveCounts& operator+=(const AdaptiveCounts& o) {
    noise_margin += o.noise_margin;
    midpoint += o.midpoint;
    return *this;
  }
};

runner::Json adaptive_to_json(const AdaptiveCounts& c) {
  runner::Json row = runner::Json::array();
  row.push_back(detection_to_json(c.noise_margin));
  row.push_back(detection_to_json(c.midpoint));
  return row;
}

AdaptiveCounts adaptive_from_json(const runner::Json& row) {
  const runner::Json::Array& a = row.as_array();
  if (a.size() != 2) {
    throw std::runtime_error("AdaptiveCounts: expected 2 fields");
  }
  AdaptiveCounts c;
  c.noise_margin = detection_from_json(a[0]);
  c.midpoint = detection_from_json(a[1]);
  return c;
}

runner::SweepReport part_c(const bench::BenchArgs& args,
                           fabric::Fabric& fab) {
  const int packets = args.trials > 0 ? args.trials : 1000;
  runner::SweepGrid<double> grid;  // points: measured SNR in dB
  grid.base_seed = runner::substream_seed(args.seed, 0xc);
  grid.trials = static_cast<std::size_t>(packets);
  grid.points = {3.2, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0};

  const auto outcome = fab.run(
      "fig10_detection.c", grid, {.threads = args.threads, .chunk = 16},
      [&](const double& snr, const runner::TrialContext& ctx) {
        const CosPacket packet =
            simulate_cos_packet(base_spec(snr), ctx.seed);
        DetectorConfig noise_margin;
        noise_margin.mode = ThresholdMode::kNoiseMargin;
        // This repo's per-subcarrier midpoint refinement, for comparison.
        DetectorConfig midpoint_config;
        midpoint_config.mode = ThresholdMode::kPerSubcarrierMidpoint;
        AdaptiveCounts counts;
        counts.noise_margin =
            count_detection(packet, kControl, noise_margin);
        counts.midpoint =
            count_detection(packet, kControl, midpoint_config);
        return counts;
      },
      adaptive_to_json, adaptive_from_json);

  runner::SweepReport report;
  report.bench = "fig10_detection.c";
  report.title = "Fig. 10(c)";
  report.description =
      "false probabilities vs SNR, adaptive pilot-aided threshold";
  report.grid.set("packets_per_point", packets);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"measured_dB", 12, 1},
                    {"false_pos", 12, 4},
                    {"false_neg", 12, 4},
                    {"fp_midpoint", 12, 4},
                    {"fn_midpoint", 12, 4}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  // Both detector variants score the same packets, and both evaluations
  // record into the health registry — so the cross-checkable total is
  // their sum.
  DetectionCounts totals;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const AdaptiveCounts& counts = outcome.point_results[i];
    totals += counts.noise_margin;
    totals += counts.midpoint;
    report.add_row({grid.points[i], counts.noise_margin.positive_rate(),
                    counts.noise_margin.negative_rate(),
                    counts.midpoint.positive_rate(),
                    counts.midpoint.negative_rate()});
  }
  report.grid.set("confusion_totals", detection_to_json(totals));
  return report;
}

// Part (d) compares interfered vs clean detection on the SAME channel
// and noise realizations.
struct InterferenceCounts {
  DetectionCounts interfered;
  DetectionCounts clean;
  InterferenceCounts& operator+=(const InterferenceCounts& o) {
    interfered += o.interfered;
    clean += o.clean;
    return *this;
  }
};

runner::Json interference_to_json(const InterferenceCounts& c) {
  runner::Json row = runner::Json::array();
  row.push_back(detection_to_json(c.interfered));
  row.push_back(detection_to_json(c.clean));
  return row;
}

InterferenceCounts interference_from_json(const runner::Json& row) {
  const runner::Json::Array& a = row.as_array();
  if (a.size() != 2) {
    throw std::runtime_error("InterferenceCounts: expected 2 fields");
  }
  InterferenceCounts c;
  c.interfered = detection_from_json(a[0]);
  c.clean = detection_from_json(a[1]);
  return c;
}

runner::SweepReport part_d(const bench::BenchArgs& args,
                           fabric::Fabric& fab) {
  const int packets = args.trials > 0 ? args.trials : 200;
  runner::SweepGrid<double> grid;  // points: measured SNR in dB
  grid.base_seed = runner::substream_seed(args.seed, 0xd);
  grid.trials = static_cast<std::size_t>(packets);
  grid.points = {3.2, 6.0, 10.0, 14.0, 18.0, 20.0};
  const PulseInterferer strong{.symbol_hit_probability = 0.6,
                               .pulse_power = 1.0};

  const auto outcome = fab.run(
      "fig10_detection.d", grid, {.threads = args.threads, .chunk = 8},
      [&](const double& snr, const runner::TrialContext& ctx) {
        CosTrialSpec interfered = base_spec(snr);
        interfered.ground_truth_framing = true;
        interfered.interferer = strong;
        // Interference at low SNR misses control messages by design;
        // dump only on the rarer CRC/false-alarm anomalies.
        interfered.dump_on_control_miss = false;
        CosTrialSpec clean = base_spec(snr);
        clean.ground_truth_framing = true;
        InterferenceCounts counts;
        counts.interfered = run_cos_trial(interfered,
                                          {.sweep = "fig10_detection.d",
                                           .point_index = ctx.point_index,
                                           .trial_index = ctx.trial_index},
                                          ctx.seed)
                                .detection;
        counts.clean = count_detection(simulate_cos_packet(clean, ctx.seed),
                                       kControl, DetectorConfig{});
        return counts;
      },
      interference_to_json, interference_from_json);

  runner::SweepReport report;
  report.bench = "fig10_detection.d";
  report.title = "Fig. 10(d)";
  report.description = "false negative vs SNR with strong pulse interference";
  report.grid.set("packets_per_point", packets);
  report.grid.set("symbol_hit_probability", strong.symbol_hit_probability);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"measured_dB", 12, 1},
                    {"fn_interf", 14, 4},
                    {"fn_clean", 14, 4}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  // Interfered and clean runs of the same realization both record.
  DetectionCounts totals;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const InterferenceCounts& counts = outcome.point_results[i];
    totals += counts.interfered;
    totals += counts.clean;
    report.add_row({grid.points[i], counts.interfered.negative_rate(),
                    counts.clean.negative_rate()});
  }
  report.grid.set("confusion_totals", detection_to_json(totals));
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "fig10_detection");
  fabric::Fabric fab(bench::fabric_config(args));
  if (!fab.worker_mode()) {
    bench::print_header("Fig. 10", "silence-symbol detection accuracy");
    part_a();
  }

  // In worker mode only the sweep named by the shard spec runs; the
  // other two parts return immediately with empty results.
  const runner::SweepReport b = part_b(args, fab);
  const runner::SweepReport c = part_c(args, fab);
  const runner::SweepReport d = part_d(args, fab);
  if (fab.worker_mode()) return fab.finish_worker();
  runner::TableSink table;
  table.write(b);
  table.write(c);
  table.write(d);
  std::printf(
      "\nPaper shape: (a) silenced subcarriers are clearly discernible;\n"
      "(b) high thresholds inflate false positives, low thresholds\n"
      "inflate false negatives; (c) with the adaptive threshold the\n"
      "false negative rate stays < 0.01 and the false positive rate only\n"
      "rises at very low SNR (~0.14 at 3.2 dB); (d) strong interference\n"
      "drives the false negative rate up dramatically.\n");

  if (args.json) {
    // The three sweeps share one result file: a "parts" array of the
    // standard per-sweep payloads.
    runner::Json root = runner::Json::object();
    root.set("bench", "fig10_detection");
    root.set("schema_version", 1);
    runner::Json parts = runner::Json::array();
    parts.push_back(runner::JsonSink::payload(b));
    parts.push_back(runner::JsonSink::payload(c));
    parts.push_back(runner::JsonSink::payload(d));
    root.set("parts", std::move(parts));
    runner::write_json_file(args.json_path, root);

    runner::Json timing = runner::Json::object();
    timing.set("bench", "fig10_detection");
    timing.set("threads", runner::resolve_threads(args.threads));
    timing.set("wall_seconds",
               b.wall_seconds + c.wall_seconds + d.wall_seconds);
    timing.set("trials_run", static_cast<std::int64_t>(
                                 b.trials_run + c.trials_run + d.trials_run));
    runner::write_json_file(runner::timing_sidecar_path(args.json_path),
                            timing);

    // In fabric mode this merges every worker's shard metrics with the
    // supervisor's own snapshot; otherwise it reduces to the plain
    // single-snapshot sidecar.
    fab.write_sidecars(args.json_path);
  }
  bench::finish_observability(args);
  return 0;
}
