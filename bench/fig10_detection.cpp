// Reproduces paper Fig. 10: accuracy of symbol-level energy detection.
//   (a) relative FFT magnitudes of one OFDM symbol with control
//       subcarriers [10..17], three of them silenced;
//   (b) false positive/negative probability vs detection threshold at a
//       measured SNR of 9.2 dB;
//   (c) false probabilities vs SNR with the adaptive (pilot-aided)
//       threshold, 1000 packets per point;
//   (d) false negative probability vs SNR with strong pulse interference.
//
// Runner-based: parts (b)-(d) fan individual packets across the thread
// pool as Monte-Carlo trials whose seeds derive from (base_seed, point,
// packet); per-packet detector counts merge with operator+=, so the
// false rates are bit-identical at any --threads value. Where the
// original bench simulated the same packet once per detector variant,
// one trial now runs the TX/channel/RX chain once and applies every
// detector to the same front-end result.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "channel/interference.h"
#include "core/cos_link.h"
#include "phy/ofdm.h"
#include "phy/preamble.h"
#include "runner/sinks.h"
#include "runner/sweep.h"
#include "sim/link.h"

using namespace silence;

namespace {

const std::vector<int> kControl = {9, 10, 11, 12, 13, 14, 15, 16};

// Per-cell detector confusion counts; mergeable across packets.
struct DetectCounts {
  std::size_t active = 0;
  std::size_t silent = 0;
  std::size_t false_pos = 0;
  std::size_t false_neg = 0;

  DetectCounts& operator+=(const DetectCounts& o) {
    active += o.active;
    silent += o.silent;
    false_pos += o.false_pos;
    false_neg += o.false_neg;
    return *this;
  }
  double positive_rate() const {
    return active ? static_cast<double>(false_pos) / active : 0.0;
  }
  double negative_rate() const {
    return silent ? static_cast<double>(false_neg) / silent : 0.0;
  }
};

// LOS-dominant office profile matching the paper's lab links (their
// Fig. 5 EVM range implies no deep notches on the tested positions).
MultipathProfile office_profile() {
  MultipathProfile profile;
  profile.rician_k_linear = 10.0;
  profile.decay_taps = 1.5;
  return profile;
}

// One simulated CoS packet ready for detection experiments.
struct PacketUnderTest {
  CosTxPacket tx;
  FrontEndResult fe;
  bool usable = false;  // SIGNAL decoded (or ground truth supplied)
};

// Simulates one packet at `seed` and runs the receiver front end. With
// `ground_truth_framing`, the known frame geometry is used even when
// SIGNAL fails to decode (the paper knows its fixed packet layout), so
// heavy interference does not bias the sample toward lightly-hit packets.
PacketUnderTest simulate_packet(double measured_snr_db, std::uint64_t seed,
                                const PulseInterferer* interferer,
                                bool ground_truth_framing) {
  PacketUnderTest out;
  const std::uint64_t channel_seed = runner::substream_seed(seed, 0);
  Rng rng(runner::substream_seed(seed, 1));
  const MultipathProfile profile = office_profile();
  FadingChannel channel(profile, channel_seed);
  const double nv = noise_var_for_measured_snr(channel, measured_snr_db);

  CosTxConfig tx_config;
  tx_config.mcs = &mcs_for_rate(12);
  tx_config.control_subcarriers = kControl;
  const Bytes psdu = make_test_psdu(256, rng);
  const Bits control = rng.bits(60);
  out.tx = cos_transmit(psdu, control, tx_config);

  CxVec received = channel.transmit(out.tx.samples, nv, rng);
  if (interferer != nullptr) interferer->apply(received, rng);

  out.fe = receiver_front_end(received);
  if (ground_truth_framing) {
    // Rebuild the per-symbol FFTs from the known frame geometry.
    out.fe.channel = estimate_channel(
        std::span(received).subspan(kStfSamples, kLtfSamples));
    out.fe.data_bins.clear();
    for (int s = 0; s < out.tx.frame.num_symbols(); ++s) {
      const auto offset =
          static_cast<std::size_t>(kPreambleSamples) +
          static_cast<std::size_t>(kSymbolSamples) *
              static_cast<std::size_t>(1 + s);
      out.fe.data_bins.push_back(time_to_bins(
          std::span(received).subspan(offset, kSymbolSamples)));
    }
    // A deployed receiver tracks its noise floor over many packets, so
    // a sudden interferer does not move the detection threshold; use
    // the long-term floor rather than this packet's pilot residuals
    // (which the pulses contaminate).
    out.fe.noise_var = freq_noise_var(nv);
    out.usable = true;
  } else {
    out.usable = static_cast<bool>(out.fe.signal);
  }
  return out;
}

// Confusion counts of `detector` against the packet's true silence plan.
DetectCounts count_detection(const PacketUnderTest& packet,
                             const DetectorConfig& detector) {
  DetectCounts counts;
  if (!packet.usable) return counts;
  const SilenceMask detected =
      detect_silences(packet.fe, kControl, detector);
  // A SIGNAL mis-decode (possible at very low SNR) yields the wrong
  // symbol count; skip such packets.
  if (detected.size() != packet.tx.plan.mask.size()) return counts;
  for (std::size_t s = 0; s < packet.tx.plan.mask.size(); ++s) {
    for (int sc : kControl) {
      const auto idx = static_cast<std::size_t>(sc);
      if (packet.tx.plan.mask[s][idx]) {
        ++counts.silent;
        if (!detected[s][idx]) ++counts.false_neg;
      } else {
        ++counts.active;
        if (detected[s][idx]) ++counts.false_pos;
      }
    }
  }
  return counts;
}

void part_a() {
  std::printf("(a) relative FFT magnitudes, control subcarriers [10..17]\n");
  Rng rng(5);
  MultipathProfile profile;
  FadingChannel channel(profile, 77);
  const double nv = noise_var_for_measured_snr(channel, 15.0);

  CosTxConfig tx_config;
  tx_config.mcs = &mcs_for_rate(12);
  // Subcarriers 10, 11 and 17 silenced in the first symbol (paper's
  // figure): interval "0101" = 5 between positions 1 and 7.
  tx_config.control_subcarriers = {9, 10, 11, 12, 13, 14, 15, 16};
  const Bytes psdu = make_test_psdu(256, rng);
  const Bits control = {0, 0, 0, 0, 0, 1, 0, 1};  // intervals {0, 5}
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
  const CxVec received = channel.transmit(tx.samples, nv, rng);
  const FrontEndResult fe = receiver_front_end(received);
  if (!fe.signal) {
    std::printf("  (SIGNAL failed; rerun)\n");
    return;
  }
  const auto energies = data_bin_energies(fe.data_bins.front());
  const double peak = *std::max_element(energies.begin(), energies.end());
  std::printf("%10s %12s %10s\n", "subcarrier", "rel_magn", "state");
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    const bool silenced = tx.plan.mask[0][idx] != 0;
    std::printf("%10d %12.3f %10s\n", j + 1,
                std::sqrt(energies[idx] / peak),
                silenced ? "silence" : "active");
  }
}

runner::SweepReport part_b(const bench::BenchArgs& args) {
  const int packets = args.trials > 0 ? args.trials : 150;
  runner::SweepGrid<double> grid;  // points: threshold in dB
  grid.base_seed = runner::substream_seed(args.seed, 0xb);
  grid.trials = static_cast<std::size_t>(packets);
  for (double thr_db = -30.0; thr_db <= 10.0; thr_db += 2.5) {
    grid.points.push_back(thr_db);
  }

  const auto outcome = runner::run_sweep(
      grid, {.threads = args.threads, .chunk = 8},
      [&](const double& thr_db, const runner::TrialContext& ctx) {
        DetectorConfig detector;
        detector.fixed_threshold = std::pow(10.0, thr_db / 10.0);
        return count_detection(
            simulate_packet(9.2, ctx.seed, nullptr, false), detector);
      });

  runner::SweepReport report;
  report.bench = "fig10_detection.b";
  report.title = "Fig. 10(b)";
  report.description =
      "false probabilities vs detection threshold @ 9.2 dB measured";
  report.grid.set("measured_snr_db", 9.2);
  report.grid.set("packets_per_point", packets);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"threshold_dB", 16, 1},
                    {"false_pos", 12, 4},
                    {"false_neg", 12, 4}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const DetectCounts& counts = outcome.point_results[i];
    report.add_row({grid.points[i], counts.positive_rate(),
                    counts.negative_rate()});
  }
  return report;
}

// Part (c) evaluates two adaptive-threshold variants on the SAME packets.
struct AdaptiveCounts {
  DetectCounts noise_margin;
  DetectCounts midpoint;
  AdaptiveCounts& operator+=(const AdaptiveCounts& o) {
    noise_margin += o.noise_margin;
    midpoint += o.midpoint;
    return *this;
  }
};

runner::SweepReport part_c(const bench::BenchArgs& args) {
  const int packets = args.trials > 0 ? args.trials : 1000;
  runner::SweepGrid<double> grid;  // points: measured SNR in dB
  grid.base_seed = runner::substream_seed(args.seed, 0xc);
  grid.trials = static_cast<std::size_t>(packets);
  grid.points = {3.2, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0};

  const auto outcome = runner::run_sweep(
      grid, {.threads = args.threads, .chunk = 16},
      [&](const double& snr, const runner::TrialContext& ctx) {
        const PacketUnderTest packet =
            simulate_packet(snr, ctx.seed, nullptr, false);
        DetectorConfig noise_margin;
        noise_margin.mode = ThresholdMode::kNoiseMargin;
        // This repo's per-subcarrier midpoint refinement, for comparison.
        DetectorConfig midpoint_config;
        midpoint_config.mode = ThresholdMode::kPerSubcarrierMidpoint;
        AdaptiveCounts counts;
        counts.noise_margin = count_detection(packet, noise_margin);
        counts.midpoint = count_detection(packet, midpoint_config);
        return counts;
      });

  runner::SweepReport report;
  report.bench = "fig10_detection.c";
  report.title = "Fig. 10(c)";
  report.description =
      "false probabilities vs SNR, adaptive pilot-aided threshold";
  report.grid.set("packets_per_point", packets);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"measured_dB", 12, 1},
                    {"false_pos", 12, 4},
                    {"false_neg", 12, 4},
                    {"fp_midpoint", 12, 4},
                    {"fn_midpoint", 12, 4}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const AdaptiveCounts& counts = outcome.point_results[i];
    report.add_row({grid.points[i], counts.noise_margin.positive_rate(),
                    counts.noise_margin.negative_rate(),
                    counts.midpoint.positive_rate(),
                    counts.midpoint.negative_rate()});
  }
  return report;
}

// Part (d) compares interfered vs clean detection on the SAME channel
// and noise realizations.
struct InterferenceCounts {
  DetectCounts interfered;
  DetectCounts clean;
  InterferenceCounts& operator+=(const InterferenceCounts& o) {
    interfered += o.interfered;
    clean += o.clean;
    return *this;
  }
};

runner::SweepReport part_d(const bench::BenchArgs& args) {
  const int packets = args.trials > 0 ? args.trials : 200;
  runner::SweepGrid<double> grid;  // points: measured SNR in dB
  grid.base_seed = runner::substream_seed(args.seed, 0xd);
  grid.trials = static_cast<std::size_t>(packets);
  grid.points = {3.2, 6.0, 10.0, 14.0, 18.0, 20.0};
  const PulseInterferer strong{.symbol_hit_probability = 0.6,
                               .pulse_power = 1.0};

  const auto outcome = runner::run_sweep(
      grid, {.threads = args.threads, .chunk = 8},
      [&](const double& snr, const runner::TrialContext& ctx) {
        InterferenceCounts counts;
        counts.interfered = count_detection(
            simulate_packet(snr, ctx.seed, &strong,
                            /*ground_truth_framing=*/true),
            DetectorConfig{});
        counts.clean = count_detection(
            simulate_packet(snr, ctx.seed, nullptr,
                            /*ground_truth_framing=*/true),
            DetectorConfig{});
        return counts;
      });

  runner::SweepReport report;
  report.bench = "fig10_detection.d";
  report.title = "Fig. 10(d)";
  report.description = "false negative vs SNR with strong pulse interference";
  report.grid.set("packets_per_point", packets);
  report.grid.set("symbol_hit_probability", strong.symbol_hit_probability);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.columns = {{"measured_dB", 12, 1},
                    {"fn_interf", 14, 4},
                    {"fn_clean", 14, 4}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const InterferenceCounts& counts = outcome.point_results[i];
    report.add_row({grid.points[i], counts.interfered.negative_rate(),
                    counts.clean.negative_rate()});
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "fig10_detection");
  bench::print_header("Fig. 10", "silence-symbol detection accuracy");
  part_a();

  const runner::SweepReport b = part_b(args);
  const runner::SweepReport c = part_c(args);
  const runner::SweepReport d = part_d(args);
  runner::TableSink table;
  table.write(b);
  table.write(c);
  table.write(d);
  std::printf(
      "\nPaper shape: (a) silenced subcarriers are clearly discernible;\n"
      "(b) high thresholds inflate false positives, low thresholds\n"
      "inflate false negatives; (c) with the adaptive threshold the\n"
      "false negative rate stays < 0.01 and the false positive rate only\n"
      "rises at very low SNR (~0.14 at 3.2 dB); (d) strong interference\n"
      "drives the false negative rate up dramatically.\n");

  if (args.json) {
    // The three sweeps share one result file: a "parts" array of the
    // standard per-sweep payloads.
    runner::Json root = runner::Json::object();
    root.set("bench", "fig10_detection");
    root.set("schema_version", 1);
    runner::Json parts = runner::Json::array();
    parts.push_back(runner::JsonSink::payload(b));
    parts.push_back(runner::JsonSink::payload(c));
    parts.push_back(runner::JsonSink::payload(d));
    root.set("parts", std::move(parts));
    runner::write_json_file(args.json_path, root);

    runner::Json timing = runner::Json::object();
    timing.set("bench", "fig10_detection");
    timing.set("threads", runner::resolve_threads(args.threads));
    timing.set("wall_seconds",
               b.wall_seconds + c.wall_seconds + d.wall_seconds);
    timing.set("trials_run", static_cast<std::int64_t>(
                                 b.trials_run + c.trials_run + d.trials_run));
    runner::write_json_file(runner::timing_sidecar_path(args.json_path),
                            timing);

    const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
    if (!snapshot.empty()) {
      runner::write_json_file(runner::metrics_sidecar_path(args.json_path),
                              runner::metrics_json(snapshot));
    }
  }
  bench::finish_observability(args);
  return 0;
}
