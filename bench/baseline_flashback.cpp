// Head-to-head with the closest prior side channel (paper §V): CoS
// silence intervals vs Flashback-style high-power tones, both riding on
// the same 1024-byte data stream at the same measured SNR.
//
// Reported per scheme: side-channel bit rate, data PRR, side-channel bit
// accuracy, and the extra transmit energy spent (units of data-symbol
// energy per delivered control bit) — the axis on which CoS wins by
// construction: a silence costs zero energy (it *saves* energy).
#include <cstdio>

#include "baselines/flashback.h"
#include "bench_util.h"
#include "core/cos_link.h"
#include "sim/link.h"

using namespace silence;

namespace {

struct SchemeResult {
  double side_kbps = 0.0;
  double data_prr = 0.0;
  double bit_accuracy = 0.0;
  double energy_per_bit = 0.0;  // extra TX energy per delivered bit
};

constexpr int kPackets = 60;

SchemeResult run_cos(double snr_db) {
  SchemeResult result;
  std::size_t bits_sent = 0, bits_ok = 0;
  int data_ok = 0;
  double airtime_s = 0.0;
  for (int p = 0; p < kPackets; ++p) {
    const auto seed = static_cast<std::uint64_t>(p) + 1;
    Rng rng(seed * 37);
    MultipathProfile profile;
    FadingChannel channel(profile, seed);
    const double nv = noise_var_for_measured_snr(channel, snr_db);
    const Mcs& mcs = select_mcs_by_snr(snr_db);

    // Detectable subcarriers for this realization (genie form of the
    // EVM-feedback + detectability selection).
    const Mcs& sel_mcs = mcs;
    DetectorConfig detector;
    detector.modulation = sel_mcs.modulation;
    const auto response = channel.frequency_response();
    std::vector<int> selected;
    for (int sc = 0; sc < kNumDataSubcarriers && selected.size() < 8; ++sc) {
      if (subcarrier_detectable(detector, freq_noise_var(nv), response,
                                sc)) {
        selected.push_back(sc);
      }
    }
    if (selected.empty()) selected = {10, 16, 22, 28};

    CosTxConfig txc;
    txc.mcs = McsId::of(mcs);
    txc.control_subcarriers = selected;
    const Bytes psdu = make_test_psdu(1024, rng);
    const Bits control = rng.bits(200);
    const CosTxPacket tx = cos_transmit(psdu, control, txc);
    const CxVec received = channel.transmit(tx.samples, nv, rng);
    CosRxConfig rxc;
    rxc.control_subcarriers = txc.control_subcarriers;
    const CosRxPacket rx = cos_receive(received, rxc);

    data_ok += rx.data_ok;
    bits_sent += tx.plan.bits_sent;
    for (std::size_t i = 0;
         i < tx.plan.bits_sent && i < rx.control_bits.size() &&
         rx.control_bits[i] == control[i];
         ++i) {
      ++bits_ok;
    }
    airtime_s += tx.frame.airtime_sec();
  }
  result.data_prr = static_cast<double>(data_ok) / kPackets;
  result.bit_accuracy =
      bits_sent ? static_cast<double>(bits_ok) / bits_sent : 0.0;
  result.side_kbps = bits_sent / airtime_s / 1000.0;
  result.energy_per_bit = 0.0;  // silences cost nothing (they save energy)
  return result;
}

SchemeResult run_flashback(double snr_db) {
  SchemeResult result;
  std::size_t bits_sent = 0, bits_ok = 0;
  int data_ok = 0;
  double airtime_s = 0.0, energy = 0.0;
  for (int p = 0; p < kPackets; ++p) {
    const auto seed = static_cast<std::uint64_t>(p) + 1;
    Rng rng(seed * 37);
    MultipathProfile profile;
    FadingChannel channel(profile, seed);
    const double nv = noise_var_for_measured_snr(channel, snr_db);

    FlashbackConfig config;
    config.mcs = McsId::for_snr(snr_db);
    const Bytes psdu = make_test_psdu(1024, rng);
    const Bits message = rng.bits(200);
    const FlashbackTxPacket tx = flashback_transmit(psdu, message, config);
    const CxVec received = channel.transmit(tx.samples, nv, rng);
    const FlashbackRxPacket rx = flashback_receive(received, config);

    data_ok += rx.data_ok;
    bits_sent += tx.bits_sent;
    for (std::size_t i = 0;
         i < tx.bits_sent && i < rx.message_bits.size() &&
         rx.message_bits[i] == message[i];
         ++i) {
      ++bits_ok;
    }
    airtime_s += tx.frame.airtime_sec();
    energy += tx.flash_energy;
  }
  result.data_prr = static_cast<double>(data_ok) / kPackets;
  result.bit_accuracy =
      bits_sent ? static_cast<double>(bits_ok) / bits_sent : 0.0;
  result.side_kbps = bits_sent / airtime_s / 1000.0;
  result.energy_per_bit = bits_ok ? energy / static_cast<double>(bits_ok)
                                  : 0.0;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Baseline", "CoS vs Flashback-style tone side channel");
  std::printf("%8s %12s | %10s %9s %9s %12s\n", "snr_dB", "scheme",
              "side_kbps", "data_PRR", "bit_acc", "energy/bit");
  for (double snr : {10.0, 14.0, 18.0, 22.0}) {
    const SchemeResult cos_result = run_cos(snr);
    const SchemeResult fb_result = run_flashback(snr);
    std::printf("%8.0f %12s | %10.1f %9.2f %9.3f %12.1f\n", snr, "CoS",
                cos_result.side_kbps, cos_result.data_prr,
                cos_result.bit_accuracy, cos_result.energy_per_bit);
    std::printf("%8s %12s | %10.1f %9.2f %9.3f %12.1f\n", "",
                "Flashback", fb_result.side_kbps, fb_result.data_prr,
                fb_result.bit_accuracy, fb_result.energy_per_bit);
  }
  std::printf(
      "\nenergy/bit is in units of one data symbol's transmit energy.\n"
      "Flashback pays ~13 data-symbol energies per delivered bit (64x\n"
      "tones, 5 bits each); CoS's silences are free — they even save the\n"
      "energy of the erased symbols.\n");
  return 0;
}
