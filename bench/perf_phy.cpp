// PHY throughput microbenchmarks (google-benchmark): the hot paths of the
// simulator — FFT, Viterbi decoding, the full transmit and receive chains,
// and the CoS additions (energy detection, silence planning).
//
// Besides the console table, every run writes `results/BENCH_phy.json`
// (per-stage ns/op and items/sec) through the runner's JSON sink so PRs
// have a machine-readable perf baseline to diff against. Builds with
// SILENCE_OBS=ON additionally record `stage_throughput` — Mitems/s per
// instrumented pipeline stage (items = samples, bits or subcarriers,
// whichever the stage's `<stage>.items` counter tracks) straight from the
// obs metrics registry. `--trace FILE` dumps a Chrome trace of the run.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "obs/obs.h"
#include "phy/batch.h"
#include "phy/convolutional.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"
#include "phy/viterbi.h"
#include "runner/json.h"
#include "runner/sinks.h"

namespace silence {
namespace {

// Items conventions (so batch/scalar items_per_second ratios read as
// speedups directly): chain-level benches count PSDU bytes, kernel-level
// benches count samples or bits.
constexpr std::size_t kBenchPsduBytes = 1024;

Bytes bench_psdu(std::size_t total) {
  Rng rng(1);
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

void BM_Fft64(benchmark::State& state) {
  Rng rng(2);
  CxVec data(64);
  for (auto& x : data) x = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    CxVec copy = data;
    fft_in_place(copy, false);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Fft64);

void BM_ViterbiDecode(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Bits info = rng.bits(bits);
  info.insert(info.end(), 6, 0);
  const Bits coded = convolutional_encode(info);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -4.0 : 4.0;
  }
  const ViterbiDecoder decoder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(llrs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(bits));
}
BENCHMARK(BM_ViterbiDecode)->Arg(1024)->Arg(8214);

// The fixed-point kernel the receive chain actually runs, measured with a
// warm workspace the way the chain holds one (zero allocations per call).
void BM_ViterbiDecodeFixed(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Bits info = rng.bits(bits);
  info.insert(info.end(), 6, 0);
  const Bits coded = convolutional_encode(info);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -4.0 : 4.0;
  }
  const ViterbiDecoder decoder;
  ViterbiWorkspace ws;
  Bits out;
  decoder.decode_fixed(llrs, true, ws, out);  // warm the workspace
  for (auto _ : state) {
    decoder.decode_fixed(llrs, true, ws, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(bits));
}
BENCHMARK(BM_ViterbiDecodeFixed)->Arg(1024)->Arg(8214);

void BM_TransmitChain(benchmark::State& state) {
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  const Mcs& mcs = mcs_for_rate(24);
  for (auto _ : state) {
    const TxFrame frame = build_frame(psdu, mcs);
    benchmark::DoNotOptimize(frame_to_samples(frame));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kBenchPsduBytes));
}
BENCHMARK(BM_TransmitChain);

void BM_TransmitChainBatch(benchmark::State& state) {
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  const Mcs& mcs = mcs_for_rate(24);
  PhyBatch batch;
  for (auto _ : state) {
    const TxFrame frame = build_frame(psdu, mcs);
    benchmark::DoNotOptimize(frame_to_samples_batch(frame, batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kBenchPsduBytes));
}
BENCHMARK(BM_TransmitChainBatch);

void BM_ReceiveChain(benchmark::State& state) {
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  const Mcs& mcs = mcs_for_rate(24);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(receive_packet(samples));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kBenchPsduBytes));
}
BENCHMARK(BM_ReceiveChain);

// B bursts per pass through the batched engine: items = B x PSDU bytes,
// so items_per_second here over BM_ReceiveChain's is the batch speedup.
void BM_ReceiveChainBatch(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  const Mcs& mcs = mcs_for_rate(24);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs));
  const std::vector<std::span<const Cx>> bursts(width, std::span(samples));
  std::vector<RxPacket> out(width);
  PhyBatch batch;
  for (auto _ : state) {
    receive_packet_batch(bursts, batch, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(width * kBenchPsduBytes));
}
BENCHMARK(BM_ReceiveChainBatch)->Arg(1)->Arg(8)->Arg(32);

void BM_CosTransmit(benchmark::State& state) {
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  Rng rng(4);
  const Bits control = rng.bits(96);
  CosTxConfig config;
  config.mcs = McsId::for_rate(24);
  config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cos_transmit(psdu, control, config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kBenchPsduBytes));
}
BENCHMARK(BM_CosTransmit);

void BM_CosTransmitBatch(benchmark::State& state) {
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  Rng rng(4);
  const Bits control = rng.bits(96);
  CosTxConfig config;
  config.mcs = McsId::for_rate(24);
  config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  PhyBatch batch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cos_transmit(psdu, control, config, batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kBenchPsduBytes));
}
BENCHMARK(BM_CosTransmitBatch);

void BM_CosReceive(benchmark::State& state) {
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  Rng rng(5);
  const Bits control = rng.bits(96);
  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(24);
  tx_config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
  CosRxConfig rx_config;
  rx_config.control_subcarriers = tx_config.control_subcarriers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cos_receive(tx.samples, rx_config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kBenchPsduBytes));
}
BENCHMARK(BM_CosReceive);

void BM_CosReceiveBatch(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  Rng rng(5);
  const Bits control = rng.bits(96);
  CosTxConfig tx_config;
  tx_config.mcs = McsId::for_rate(24);
  tx_config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
  CosRxConfig rx_config;
  rx_config.control_subcarriers = tx_config.control_subcarriers;
  const std::vector<std::span<const Cx>> bursts(width, std::span(tx.samples));
  PhyBatch batch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cos_receive_batch(bursts, rx_config, std::nullopt, batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(width * kBenchPsduBytes));
}
BENCHMARK(BM_CosReceiveBatch)->Arg(8);

void BM_FadingChannelTransmit(benchmark::State& state) {
  const Bytes psdu = bench_psdu(kBenchPsduBytes);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs_for_rate(24)));
  MultipathProfile profile;
  FadingChannel channel(profile, 6);
  Rng rng(7);
  const double nv = noise_var_for_snr_db(15.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.transmit(samples, nv, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(samples.size()));
}
BENCHMARK(BM_FadingChannelTransmit);

// Lane-batched fixed-point Viterbi vs the scalar kernel it extends:
// 8 identical-length lanes decoded lockstep.
void BM_ViterbiDecodeFixedBatch(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Bits info = rng.bits(bits);
  info.insert(info.end(), 6, 0);
  const Bits coded = convolutional_encode(info);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -4.0 : 4.0;
  }
  const ViterbiDecoder decoder;
  ViterbiBatchWorkspace ws;
  const std::vector<std::span<const double>> lanes(
      ViterbiDecoder::kBatchLanes, std::span<const double>(llrs));
  std::vector<Bits> out(lanes.size());
  decoder.decode_fixed_batch(lanes, true, ws, out);  // warm the workspace
  for (auto _ : state) {
    decoder.decode_fixed_batch(lanes, true, ws, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(bits * lanes.size()));
}
BENCHMARK(BM_ViterbiDecodeFixedBatch)->Arg(1024)->Arg(8214);

// Console output as usual, plus a structured record of every run for the
// perf-baseline file.
class JsonEmitReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      runner::Json entry = runner::Json::object();
      entry.set("name", run.benchmark_name());
      entry.set("iterations", static_cast<std::int64_t>(run.iterations));
      entry.set("real_ns", run.GetAdjustedRealTime());
      entry.set("cpu_ns", run.GetAdjustedCPUTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        entry.set("items_per_second", static_cast<double>(items->second));
      }
      stages_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void write_json(const std::string& path) const {
    runner::Json root = runner::Json::object();
    root.set("bench", "perf_phy");
    root.set("schema_version", 1);
    root.set("stages", runner::Json::Array(stages_));
    // Per-stage pipeline throughput from the obs registry: every
    // instrumented stage with a `<stage>.ns` histogram and a matching
    // `<stage>.items` counter. Appended after the legacy fields so
    // existing consumers of bench/schema_version/stages see identical
    // bytes; absent entirely in SILENCE_OBS=OFF builds (empty snapshot).
    const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
    runner::Json throughput = runner::Json::object();
    bool any = false;
    for (const auto& h : snapshot.histograms) {
      constexpr std::string_view kNsSuffix = ".ns";
      if (h.name.size() <= kNsSuffix.size() ||
          h.name.compare(h.name.size() - kNsSuffix.size(), kNsSuffix.size(),
                         kNsSuffix) != 0) {
        continue;
      }
      const std::string stage =
          h.name.substr(0, h.name.size() - kNsSuffix.size());
      const auto* items = snapshot.counter(stage + ".items");
      if (items == nullptr || h.sum == 0) continue;
      runner::Json entry = runner::Json::object();
      entry.set("ns", static_cast<std::int64_t>(h.sum));
      entry.set("calls", static_cast<std::int64_t>(h.count));
      entry.set("items", static_cast<std::int64_t>(items->value));
      entry.set("mitems_per_second",
                static_cast<double>(items->value) * 1000.0 /
                    static_cast<double>(h.sum));
      throughput.set(stage, std::move(entry));
      any = true;
    }
    if (any) root.set("stage_throughput", std::move(throughput));
    runner::write_json_file(path, root);
    std::printf("perf baseline written to %s\n", path.c_str());
  }

 private:
  std::vector<runner::Json> stages_;
};

}  // namespace
}  // namespace silence

int main(int argc, char** argv) {
  // Peel off our own --trace flag before google-benchmark sees argv.
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#if SILENCE_OBS_ON
  if (!trace_path.empty()) silence::obs::Tracer::global().start();
#endif
  silence::JsonEmitReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write_json("results/BENCH_phy.json");
#if SILENCE_OBS_ON
  if (!trace_path.empty()) {
    silence::obs::Tracer::global().write(trace_path);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
#endif
  benchmark::Shutdown();
  return 0;
}
