// PHY throughput microbenchmarks (google-benchmark): the hot paths of the
// simulator — FFT, Viterbi decoding, the full transmit and receive chains,
// and the CoS additions (energy detection, silence planning).
#include <benchmark/benchmark.h>

#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "phy/convolutional.h"
#include "phy/receiver.h"
#include "phy/transmitter.h"
#include "phy/viterbi.h"

namespace silence {
namespace {

Bytes bench_psdu(std::size_t total) {
  Rng rng(1);
  Bytes psdu = rng.bytes(total - 4);
  append_fcs(psdu);
  return psdu;
}

void BM_Fft64(benchmark::State& state) {
  Rng rng(2);
  CxVec data(64);
  for (auto& x : data) x = rng.complex_gaussian(1.0);
  for (auto _ : state) {
    CxVec copy = data;
    fft_in_place(copy, false);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Fft64);

void BM_ViterbiDecode(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Bits info = rng.bits(bits);
  info.insert(info.end(), 6, 0);
  const Bits coded = convolutional_encode(info);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? -4.0 : 4.0;
  }
  const ViterbiDecoder decoder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(llrs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(bits));
}
BENCHMARK(BM_ViterbiDecode)->Arg(1024)->Arg(8214);

void BM_TransmitChain(benchmark::State& state) {
  const Bytes psdu = bench_psdu(1024);
  const Mcs& mcs = mcs_for_rate(24);
  for (auto _ : state) {
    const TxFrame frame = build_frame(psdu, mcs);
    benchmark::DoNotOptimize(frame_to_samples(frame));
  }
}
BENCHMARK(BM_TransmitChain);

void BM_ReceiveChain(benchmark::State& state) {
  const Bytes psdu = bench_psdu(1024);
  const Mcs& mcs = mcs_for_rate(24);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(receive_packet(samples));
  }
}
BENCHMARK(BM_ReceiveChain);

void BM_CosTransmit(benchmark::State& state) {
  const Bytes psdu = bench_psdu(1024);
  Rng rng(4);
  const Bits control = rng.bits(96);
  CosTxConfig config;
  config.mcs = &mcs_for_rate(24);
  config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cos_transmit(psdu, control, config));
  }
}
BENCHMARK(BM_CosTransmit);

void BM_CosReceive(benchmark::State& state) {
  const Bytes psdu = bench_psdu(1024);
  Rng rng(5);
  const Bits control = rng.bits(96);
  CosTxConfig tx_config;
  tx_config.mcs = &mcs_for_rate(24);
  tx_config.control_subcarriers = {10, 11, 12, 13, 14, 15, 16, 17};
  const CosTxPacket tx = cos_transmit(psdu, control, tx_config);
  CosRxConfig rx_config;
  rx_config.control_subcarriers = tx_config.control_subcarriers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cos_receive(tx.samples, rx_config));
  }
}
BENCHMARK(BM_CosReceive);

void BM_FadingChannelTransmit(benchmark::State& state) {
  const Bytes psdu = bench_psdu(1024);
  const CxVec samples = frame_to_samples(build_frame(psdu, mcs_for_rate(24)));
  MultipathProfile profile;
  FadingChannel channel(profile, 6);
  Rng rng(7);
  const double nv = noise_var_for_snr_db(15.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.transmit(samples, nv, rng));
  }
}
BENCHMARK(BM_FadingChannelTransmit);

}  // namespace
}  // namespace silence

BENCHMARK_MAIN();
