// Quantifies the paper's motivation at the MAC layer: how much airtime
// explicit control messaging costs, and what CoS buys by making it free.
//
// Scenario: an AP runs a saturated downlink while coordinating uplink
// transmissions from N stations. Three designs are compared (see
// mac/coordination.h): plain DCF contention, explicit poll frames, and
// CoS grants riding inside downlink data packets.
#include <cstdio>

#include "bench_util.h"
#include "mac/coordination.h"

using namespace silence;

namespace {

void report(const char* name, const CoordinationResult& result) {
  std::printf(
      "%-14s thr %6.2f Mbps | down %5.2f up %5.2f | control %6.1f us "
      "(%4.1f%%) | idle %6.1f us | grants %zu lost %zu\n",
      name, result.total_throughput_mbps(),
      result.downlink_bits / result.elapsed_us,
      result.uplink_bits / result.elapsed_us, result.airtime.control_us,
      100.0 * result.control_overhead(), result.airtime.idle_us,
      result.grants_issued, result.grants_lost);
}

}  // namespace

int main() {
  bench::print_header(
      "MAC overhead",
      "coordination airtime: DCF vs explicit polls vs free CoS grants");

  for (int stations : {2, 4, 8}) {
    for (double snr : {14.0, 18.0, 24.0}) {
      std::printf("--- %d stations, measured SNR %.0f dB ---\n", stations,
                  snr);
      for (auto [mode, name] :
           {std::pair{CoordinationMode::kDcfContention, "DCF"},
            std::pair{CoordinationMode::kExplicitPoll, "explicit-poll"},
            std::pair{CoordinationMode::kCosGrant, "CoS-grant"}}) {
        CoordinationConfig config;
        config.mode = mode;
        config.num_stations = stations;
        config.duration_us = 150e3;
        config.measured_snr_db = snr;
        report(name, run_coordination(config));
      }
    }
  }
  std::printf(
      "\nReading: the explicit-poll design pays one basic-rate control\n"
      "frame per uplink grant; CoS delivers the same grant inside the\n"
      "downlink data for zero airtime, trading it for a small chance of\n"
      "a lost grant (skipped uplink slot). DCF pays in collisions.\n");
  return 0;
}
