// Network-scale CoS: one AP, N contending stations, every data frame
// carrying a free CoS control message. Sweeps the station count 1 -> 64
// and reports what the network gets out of the shared medium: aggregate
// data throughput, CoS control goodput (the bits the paper gets "for
// free"), the airtime DCF burns on overhead, and Jain fairness across
// stations.
//
// Runner-based: each Monte-Carlo trial runs one full scenario seed, and
// trials fan out across the thread pool with (base_seed, point, trial)
// derived seeds — results are bit-identical at any --threads value, and
// `--fabric N` shards the same sweep over N worker processes with
// byte-identical output (NetResult's JSON codec round-trips every trial
// bit-exactly through the shard artifacts).
//
// Besides the console table, every run writes `results/BENCH_net.json`:
// seed-deterministic goodput/collision numbers per station count in the
// same `stages` shape as BENCH_phy.json, so tools/bench_compare can gate
// network-level regressions in CI with a tight tolerance.
#include <cstdio>

#include "bench_util.h"
#include "net/scenario.h"
#include "runner/sinks.h"
#include "runner/sweep.h"

using namespace silence;

namespace {

constexpr int kDefaultTrialsPerPoint = 4;

net::Scenario base_scenario() {
  net::Scenario scenario;
  scenario.duration_us = 20e3;
  return scenario;
}

net::Scenario scenario_for(int num_stations) {
  net::Scenario scenario = base_scenario();
  scenario.num_stations = num_stations;
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "net_scenarios");
  const int trials = args.trials > 0 ? args.trials : kDefaultTrialsPerPoint;

  runner::SweepGrid<int> grid;  // points: station count
  grid.base_seed = args.seed;
  grid.trials = static_cast<std::size_t>(trials);
  grid.points = {1, 2, 4, 8, 16, 32, 64};

  fabric::Fabric fab(bench::fabric_config(args));
  if (!fab.worker_mode()) {
    bench::print_header("Network", "multi-STA CoS scenarios (src/net/)");
  }

  const auto outcome = fab.run(
      "net_scenarios", grid, {.threads = args.threads, .chunk = 1},
      [](const int& stas, const runner::TrialContext& ctx) {
        return net::run_scenario(scenario_for(stas), ctx.seed);
      },
      [](const net::NetResult& r) { return r.to_json(); },
      [](const runner::Json& j) { return net::NetResult::from_json(j); });
  if (fab.worker_mode()) return fab.finish_worker();

  runner::SweepReport report;
  report.bench = "net_scenarios";
  report.title = "Network";
  report.description =
      "aggregate throughput, control goodput, overhead and fairness vs "
      "station count";
  runner::Json stas_axis = runner::Json::array();
  for (const int n : grid.points) {
    stas_axis.push_back(static_cast<std::int64_t>(n));
  }
  report.grid.set("stations", std::move(stas_axis));
  report.grid.set("trials_per_point", trials);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.grid.set("scenario", base_scenario().to_json());
  report.columns = {{"stas", 6, 0},       {"thpt_mbps", 10, 2},
                    {"ctrl_kbps", 10, 2}, {"overhead", 9, 3},
                    {"fairness", 9, 3},   {"coll_rate", 10, 3},
                    {"mpdus", 8, 0}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const net::NetResult& r = outcome.point_results[i];
    std::size_t mpdus = 0;
    for (const net::StaStats& s : r.stations) mpdus += s.mpdus_delivered;
    report.add_row({static_cast<std::int64_t>(grid.points[i]),
                    r.aggregate_throughput_mbps(), r.control_goodput_kbps(),
                    r.airtime_overhead(), r.jain_fairness(),
                    r.collision_rate(),
                    static_cast<std::int64_t>(mpdus)});
  }
  report.notes = {
      "",
      "Reading: control goodput scales with the medium's data airtime —",
      "every won frame carries its station's control chunk for free, so",
      "the overhead column (idle + collisions + ACKs) never grows a",
      "control-frame component. Fairness decays as far stations at low",
      "SNR lose airtime share to collisions and slow rates."};

  runner::TableSink table;
  table.write(report);
  if (args.json) {
    runner::JsonSink(args.json_path).write(report);
    if (fab.fabric_mode()) {
      // Replace the supervisor-only sidecar JsonSink just wrote with the
      // merge of every worker's shard metrics plus our own snapshot.
      fab.write_metrics_sidecar(args.json_path);
    }
  }

  // Machine-readable perf/behavior baseline for tools/bench_compare.
  // Only seed-deterministic quantities (no wall-clock), so the CI gate
  // can use a tight tolerance: goodput as items/sec (bits per simulated
  // second of medium time) per station count.
  runner::Json bench_json = runner::Json::object();
  bench_json.set("bench", "net_scenarios");
  bench_json.set("schema_version", 1);
  runner::Json stages = runner::Json::array();
  runner::Json net_points = runner::Json::array();
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const net::NetResult& r = outcome.point_results[i];
    const std::string suffix = "/stas=" + std::to_string(grid.points[i]);
    runner::Json thpt = runner::Json::object();
    thpt.set("name", "NET/goodput" + suffix);
    thpt.set("items_per_second", r.aggregate_throughput_mbps() * 1e6);
    stages.push_back(std::move(thpt));
    runner::Json ctrl = runner::Json::object();
    ctrl.set("name", "NET/ctrl_goodput" + suffix);
    ctrl.set("items_per_second", r.control_goodput_kbps() * 1e3);
    stages.push_back(std::move(ctrl));

    std::size_t mpdus = 0;
    for (const net::StaStats& s : r.stations) mpdus += s.mpdus_delivered;
    runner::Json point = runner::Json::object();
    point.set("stas", static_cast<std::int64_t>(grid.points[i]));
    point.set("thpt_mbps", r.aggregate_throughput_mbps());
    point.set("ctrl_kbps", r.control_goodput_kbps());
    point.set("overhead", r.airtime_overhead());
    point.set("fairness", r.jain_fairness());
    point.set("coll_rate", r.collision_rate());
    point.set("mpdus", static_cast<std::int64_t>(mpdus));
    net_points.push_back(std::move(point));
  }
  bench_json.set("stages", std::move(stages));
  bench_json.set("net_points", std::move(net_points));
  runner::write_json_file("results/BENCH_net.json", bench_json);

  bench::finish_observability(args);
  return 0;
}
