// Network-scale CoS on the event-driven engine: one or more APs, N
// contending stations, every data frame carrying a free CoS control
// message. Sweeps the station count 1 -> 1024 and reports what the
// network gets out of the shared medium: aggregate data throughput, CoS
// control goodput (the bits the paper gets "for free"), the airtime DCF
// burns on overhead, Jain fairness across stations, and the engine's
// event throughput.
//
// Runner-based: each Monte-Carlo trial runs one full scenario seed, and
// trials fan out across the thread pool with (base_seed, point, trial)
// derived seeds — results are bit-identical at any --threads value, and
// `--fabric N` shards the same sweep over N worker processes with
// byte-identical output (NetResult's JSON codec round-trips every trial
// bit-exactly through the shard artifacts).
//
// `--topology FILE` swaps the single-AP axis for one multi-BSS topology
// read from a net::Topology JSON document (hidden terminals, OBSS
// channel overlap); `--traffic SPEC` selects the per-station offered
// load: "saturated" (default), "poisson:RATE_FPS" or
// "onoff:RATE_FPS:MEAN_ON_US:MEAN_OFF_US".
//
// Besides the console table, every run writes `results/BENCH_net.json`:
// seed-deterministic goodput/collision/event-rate numbers per station
// count — plus a 2-AP co-channel OBSS point — in the same `stages` shape
// as BENCH_phy.json, so tools/bench_compare can gate network-level
// regressions in CI with a tight tolerance.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/scenario.h"
#include "phy/batch.h"
#include "runner/sinks.h"
#include "runner/sweep.h"

using namespace silence;

namespace {

constexpr int kDefaultTrialsPerPoint = 4;

// --stas "1,2,16": the sweep's station-count axis. Lets CI (and anyone
// chasing one scenario's MAC timeline) run a single point — with one
// point and --trials 1 the --trace timeline is bit-stable at any thread
// count, because exactly one run_scenario claims the simulation tracks.
std::vector<int> parse_stas(const std::string& csv) {
  std::vector<int> points;
  const char* p = csv.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < 1 || (*end != ',' && *end != '\0')) {
      std::fprintf(stderr, "net_scenarios: bad --stas list '%s'\n",
                   csv.c_str());
      std::exit(2);
    }
    points.push_back(static_cast<int>(v));
    p = *end == ',' ? end + 1 : end;
  }
  if (points.empty()) {
    std::fprintf(stderr, "net_scenarios: empty --stas list\n");
    std::exit(2);
  }
  return points;
}

// --traffic "saturated" | "poisson:2000" | "onoff:2000:4000:4000".
net::TrafficModel parse_traffic(const std::string& spec) {
  net::TrafficModel tm;
  if (spec == "saturated") return tm;
  const auto fields = [&spec] {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
      const std::size_t colon = spec.find(':', start);
      out.push_back(spec.substr(start, colon - start));
      if (colon == std::string::npos) return out;
      start = colon + 1;
    }
  }();
  const auto num = [&spec](const std::string& field) {
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0' || !(v > 0.0)) {
      std::fprintf(stderr, "net_scenarios: bad --traffic '%s'\n",
                   spec.c_str());
      std::exit(2);
    }
    return v;
  };
  if (fields.size() == 2 && fields[0] == "poisson") {
    tm.kind = net::TrafficModel::Kind::kPoisson;
    tm.arrival_rate_fps = num(fields[1]);
    return tm;
  }
  if (fields.size() == 4 && fields[0] == "onoff") {
    tm.kind = net::TrafficModel::Kind::kOnOff;
    tm.arrival_rate_fps = num(fields[1]);
    tm.mean_on_us = num(fields[2]);
    tm.mean_off_us = num(fields[3]);
    return tm;
  }
  std::fprintf(stderr,
               "net_scenarios: bad --traffic '%s' (want saturated, "
               "poisson:RATE or onoff:RATE:ON_US:OFF_US)\n",
               spec.c_str());
  std::exit(2);
}

// Latency percentiles reported per point: every station's head-of-line
// wait histogram merged into one distribution (same for inter-TX gaps).
net::SlotHist merged_hol(const net::NetResult& r) {
  net::SlotHist h;
  for (const net::StaStats& s : r.stations) h += s.hol_wait_slots;
  return h;
}

net::SlotHist merged_gap(const net::NetResult& r) {
  net::SlotHist h;
  for (const net::StaStats& s : r.stations) h += s.inter_tx_gap_slots;
  return h;
}

// The scenario template every sweep point derives from: set in main()
// from --traffic / --topology, read by the (captureless) trial lambda.
net::Scenario g_base_scenario;
bool g_topology_mode = false;

net::Scenario base_scenario(const net::TrafficModel& traffic) {
  net::Scenario scenario;
  scenario.duration_us = 20e3;
  scenario.traffic = traffic;
  return scenario;
}

net::Scenario scenario_for(int num_stations) {
  net::Scenario scenario = g_base_scenario;
  // In topology mode the geometry is fixed by the file; the single sweep
  // point carries its total station count for labelling only.
  if (!g_topology_mode) {
    scenario.topology.bss[0].num_stations = num_stations;
  }
  return scenario;
}

// Engine event throughput per simulated second: a pure function of
// (scenario, seed), so it lands in BENCH_net.json and must survive the
// CI byte-identity comparisons across thread and fabric counts.
// (Wall-clock events/sec is printed to the console only.)
double events_per_sim_second(const net::NetResult& r) {
  return r.elapsed_us > 0.0
             ? static_cast<double>(r.events) / (r.elapsed_us * 1e-6)
             : 0.0;
}

// Appends one point's deterministic rows to the BENCH stages array.
void add_stage_rows(runner::Json& stages, const std::string& suffix,
                    const net::NetResult& r) {
  runner::Json thpt = runner::Json::object();
  thpt.set("name", "NET/goodput" + suffix);
  thpt.set("items_per_second", r.aggregate_throughput_mbps() * 1e6);
  stages.push_back(std::move(thpt));
  runner::Json ctrl = runner::Json::object();
  ctrl.set("name", "NET/ctrl_goodput" + suffix);
  ctrl.set("items_per_second", r.control_goodput_kbps() * 1e3);
  stages.push_back(std::move(ctrl));
  runner::Json events = runner::Json::object();
  events.set("name", "NET/engine_events" + suffix);
  events.set("items_per_second", events_per_sim_second(r));
  stages.push_back(std::move(events));
}

runner::Json net_point_row(std::int64_t stas, const net::NetResult& r) {
  std::size_t mpdus = 0;
  for (const net::StaStats& s : r.stations) mpdus += s.mpdus_delivered;
  runner::Json point = runner::Json::object();
  point.set("stas", stas);
  point.set("thpt_mbps", r.aggregate_throughput_mbps());
  point.set("ctrl_kbps", r.control_goodput_kbps());
  point.set("overhead", r.airtime_overhead());
  point.set("fairness", r.jain_fairness());
  point.set("coll_rate", r.collision_rate());
  point.set("mpdus", static_cast<std::int64_t>(mpdus));
  const net::SlotHist hol = merged_hol(r);
  const net::SlotHist gap = merged_gap(r);
  point.set("hol_wait_slots_p50", hol.quantile(0.50));
  point.set("hol_wait_slots_p95", hol.quantile(0.95));
  point.set("hol_wait_slots_p99", hol.quantile(0.99));
  point.set("inter_tx_gap_slots_p50", gap.quantile(0.50));
  point.set("inter_tx_gap_slots_p95", gap.quantile(0.95));
  point.set("events", static_cast<std::int64_t>(r.events));
  point.set("events_per_sim_second", events_per_sim_second(r));
  point.set("obss_overlap_us", r.obss_overlap_us);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stas_csv;
  std::string topology_path;
  std::string traffic_spec = "saturated";
  bool no_phy_batch = false;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "net_scenarios",
      {{"--stas",
        "comma-separated station counts for the sweep axis\n"
        "                (default 1,2,4,8,16,32,64,128,256,512,1024)",
        [&stas_csv](const char* v) { stas_csv = v; }},
       {"--topology",
        "run one multi-BSS topology from a net::Topology JSON file\n"
        "                instead of the station-count axis (excludes --stas)",
        [&topology_path](const char* v) { topology_path = v; }},
       {"--traffic",
        "per-station offered load: saturated (default), poisson:RATE\n"
        "                or onoff:RATE:MEAN_ON_US:MEAN_OFF_US",
        [&traffic_spec](const char* v) { traffic_spec = v; }},
       {"--no-phy-batch",
        "route every packet through the scalar PHY chain instead of\n"
        "                the batched SoA engine (CI A/Bs the two paths for\n"
        "                byte-identical output)",
        [&no_phy_batch](const char*) { no_phy_batch = true; },
        /*takes_value=*/false}});
  if (no_phy_batch) set_phy_batch_enabled(false);
  if (!topology_path.empty() && !stas_csv.empty()) {
    std::fprintf(stderr,
                 "net_scenarios: --topology and --stas are exclusive\n");
    return 2;
  }
  const int trials = args.trials > 0 ? args.trials : kDefaultTrialsPerPoint;
  const net::TrafficModel traffic = parse_traffic(traffic_spec);

  g_base_scenario = base_scenario(traffic);
  g_topology_mode = !topology_path.empty();
  if (g_topology_mode) {
    g_base_scenario.topology =
        net::Topology::from_json(runner::read_json_file(topology_path));
    g_base_scenario.topology.validate();
  }

  runner::SweepGrid<int> grid;  // points: total station count
  grid.base_seed = args.seed;
  grid.trials = static_cast<std::size_t>(trials);
  grid.points =
      g_topology_mode ? std::vector<int>{g_base_scenario.topology
                                             .total_stations()}
      : stas_csv.empty()
          ? std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
          : parse_stas(stas_csv);

  fabric::FabricConfig fab_config = bench::fabric_config(args);
  if (!stas_csv.empty()) {
    // Workers must rebuild the identical grid.
    fab_config.passthrough_args.push_back("--stas");
    fab_config.passthrough_args.push_back(stas_csv);
  }
  if (!topology_path.empty()) {
    fab_config.passthrough_args.push_back("--topology");
    fab_config.passthrough_args.push_back(topology_path);
  }
  if (traffic_spec != "saturated") {
    fab_config.passthrough_args.push_back("--traffic");
    fab_config.passthrough_args.push_back(traffic_spec);
  }
  if (no_phy_batch) {
    // Workers must run the same engine.
    fab_config.passthrough_args.push_back("--no-phy-batch");
  }
  fabric::Fabric fab(std::move(fab_config));
  if (!fab.worker_mode()) {
    bench::print_header("Network", "multi-STA CoS scenarios (src/net/)");
  }

  const auto outcome = fab.run(
      "net_scenarios", grid, {.threads = args.threads, .chunk = 1},
      [](const int& stas, const runner::TrialContext& ctx) {
        return net::run_scenario(scenario_for(stas), ctx.seed);
      },
      [](const net::NetResult& r) { return r.to_json(); },
      [](const runner::Json& j) { return net::NetResult::from_json(j); });
  if (fab.worker_mode()) return fab.finish_worker();

  runner::SweepReport report;
  report.bench = "net_scenarios";
  report.title = "Network";
  report.description =
      "aggregate throughput, control goodput, overhead and fairness vs "
      "station count";
  runner::Json stas_axis = runner::Json::array();
  for (const int n : grid.points) {
    stas_axis.push_back(static_cast<std::int64_t>(n));
  }
  report.grid.set("stations", std::move(stas_axis));
  report.grid.set("trials_per_point", trials);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.grid.set("scenario", g_base_scenario.to_json());
  report.columns = {{"stas", 6, 0},       {"thpt_mbps", 10, 2},
                    {"ctrl_kbps", 10, 2}, {"overhead", 9, 3},
                    {"fairness", 9, 3},   {"coll_rate", 10, 3},
                    {"mpdus", 8, 0},      {"hol_p50", 8, 1},
                    {"hol_p95", 8, 1},    {"hol_p99", 8, 1}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  std::uint64_t total_events = 0;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const net::NetResult& r = outcome.point_results[i];
    total_events += r.events;
    std::size_t mpdus = 0;
    for (const net::StaStats& s : r.stations) mpdus += s.mpdus_delivered;
    const net::SlotHist hol = merged_hol(r);
    report.add_row({static_cast<std::int64_t>(grid.points[i]),
                    r.aggregate_throughput_mbps(), r.control_goodput_kbps(),
                    r.airtime_overhead(), r.jain_fairness(),
                    r.collision_rate(),
                    static_cast<std::int64_t>(mpdus), hol.quantile(0.50),
                    hol.quantile(0.95), hol.quantile(0.99)});
  }
  report.notes = {
      "",
      "Reading: control goodput scales with the medium's data airtime —",
      "every won frame carries its station's control chunk for free, so",
      "the overhead column (idle + collisions + ACKs) never grows a",
      "control-frame component. Fairness decays as far stations at low",
      "SNR lose airtime share to collisions and slow rates. hol_p* are",
      "head-of-line wait percentiles in 9 us slots, merged over stations",
      "(per-station distributions live in the .metrics.json sidecar)."};

  runner::TableSink table;
  table.write(report);
  // Wall-clock engine throughput: console-only (never in JSON, which the
  // CI byte-compares across thread and fabric counts).
  if (outcome.wall_seconds > 0.0) {
    std::printf("  engine: %llu calendar events, %.2f M events/s wall\n\n",
                static_cast<unsigned long long>(total_events),
                1e-6 * static_cast<double>(total_events) /
                    outcome.wall_seconds);
  }
  if (args.json) {
    runner::JsonSink(args.json_path).write(report);
    if (fab.fabric_mode()) {
      // Replace the supervisor-only sidecar JsonSink just wrote with the
      // merge of every worker's shard metrics plus our own snapshot, and
      // drop the supervisor's shard-lifecycle telemetry alongside.
      fab.write_sidecars(args.json_path);
    }
  }

  // Machine-readable perf/behavior baseline for tools/bench_compare.
  // Only seed-deterministic quantities (no wall-clock), so the CI gate
  // can use a tight tolerance: goodput as items/sec (bits per simulated
  // second of medium time) and engine events per simulated second, per
  // station count.
  runner::Json bench_json = runner::Json::object();
  bench_json.set("bench", "net_scenarios");
  bench_json.set("schema_version", 1);
  runner::Json stages = runner::Json::array();
  runner::Json net_points = runner::Json::array();
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const net::NetResult& r = outcome.point_results[i];
    add_stage_rows(stages, "/stas=" + std::to_string(grid.points[i]), r);
    net_points.push_back(
        net_point_row(static_cast<std::int64_t>(grid.points[i]), r));
  }

  // The standing OBSS reference point: two co-channel 8-station cells
  // whose PPDUs overlap in time, exercising the engine's cross-BSS
  // interference path. Run supervisor-side (it is one small point) so
  // single-process and --fabric runs of this bench emit byte-identical
  // JSON. Skipped in topology mode: the file IS the topology under test.
  if (!g_topology_mode) {
    net::Scenario obss = base_scenario(traffic);
    obss.topology.bss.clear();
    obss.topology.bss.push_back({.channel = 36, .num_stations = 8});
    obss.topology.bss.push_back({.channel = 36, .num_stations = 8});
    runner::SweepGrid<int> obss_grid;
    obss_grid.base_seed = args.seed;
    obss_grid.trials = static_cast<std::size_t>(trials);
    obss_grid.points = {obss.topology.total_stations()};
    const auto obss_outcome = runner::run_sweep(
        obss_grid, {.threads = args.threads, .chunk = 1},
        [&obss](const int&, const runner::TrialContext& ctx) {
          return net::run_scenario(obss, ctx.seed);
        });
    const net::NetResult& r = obss_outcome.point_results[0];
    add_stage_rows(stages, "/obss=2ap_cochannel", r);
    runner::Json row = net_point_row(
        static_cast<std::int64_t>(obss.topology.total_stations()), r);
    row.set("obss", "2ap_cochannel");
    net_points.push_back(std::move(row));
    std::printf(
        "  obss reference (2 co-channel APs, 8+8 STAs): %.1f us overlap, "
        "%.2f Mb/s\n\n",
        r.obss_overlap_us, r.aggregate_throughput_mbps());
  }
  bench_json.set("stages", std::move(stages));
  bench_json.set("net_points", std::move(net_points));
  runner::write_json_file("results/BENCH_net.json", bench_json);

  bench::finish_observability(args);
  return 0;
}
