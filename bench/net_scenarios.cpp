// Network-scale CoS: one AP, N contending stations, every data frame
// carrying a free CoS control message. Sweeps the station count 1 -> 256
// and reports what the network gets out of the shared medium: aggregate
// data throughput, CoS control goodput (the bits the paper gets "for
// free"), the airtime DCF burns on overhead, and Jain fairness across
// stations.
//
// Runner-based: each Monte-Carlo trial runs one full scenario seed, and
// trials fan out across the thread pool with (base_seed, point, trial)
// derived seeds — results are bit-identical at any --threads value, and
// `--fabric N` shards the same sweep over N worker processes with
// byte-identical output (NetResult's JSON codec round-trips every trial
// bit-exactly through the shard artifacts).
//
// Besides the console table, every run writes `results/BENCH_net.json`:
// seed-deterministic goodput/collision numbers per station count in the
// same `stages` shape as BENCH_phy.json, so tools/bench_compare can gate
// network-level regressions in CI with a tight tolerance.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/scenario.h"
#include "phy/batch.h"
#include "runner/sinks.h"
#include "runner/sweep.h"

using namespace silence;

namespace {

constexpr int kDefaultTrialsPerPoint = 4;

// --stas "1,2,16": the sweep's station-count axis. Lets CI (and anyone
// chasing one scenario's MAC timeline) run a single point — with one
// point and --trials 1 the --trace timeline is bit-stable at any thread
// count, because exactly one run_scenario claims the simulation tracks.
std::vector<int> parse_stas(const std::string& csv) {
  std::vector<int> points;
  const char* p = csv.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < 1 || (*end != ',' && *end != '\0')) {
      std::fprintf(stderr, "net_scenarios: bad --stas list '%s'\n",
                   csv.c_str());
      std::exit(2);
    }
    points.push_back(static_cast<int>(v));
    p = *end == ',' ? end + 1 : end;
  }
  if (points.empty()) {
    std::fprintf(stderr, "net_scenarios: empty --stas list\n");
    std::exit(2);
  }
  return points;
}

// Latency percentiles reported per point: every station's head-of-line
// wait histogram merged into one distribution (same for inter-TX gaps).
net::SlotHist merged_hol(const net::NetResult& r) {
  net::SlotHist h;
  for (const net::StaStats& s : r.stations) h += s.hol_wait_slots;
  return h;
}

net::SlotHist merged_gap(const net::NetResult& r) {
  net::SlotHist h;
  for (const net::StaStats& s : r.stations) h += s.inter_tx_gap_slots;
  return h;
}

net::Scenario base_scenario() {
  net::Scenario scenario;
  scenario.duration_us = 20e3;
  return scenario;
}

net::Scenario scenario_for(int num_stations) {
  net::Scenario scenario = base_scenario();
  scenario.num_stations = num_stations;
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stas_csv;
  bool no_phy_batch = false;
  const bench::BenchArgs args = bench::parse_bench_args(
      argc, argv, "net_scenarios",
      {{"--stas",
        "comma-separated station counts for the sweep axis\n"
        "                (default 1,2,4,8,16,32,64,128,256)",
        [&stas_csv](const char* v) { stas_csv = v; }},
       {"--no-phy-batch",
        "route every packet through the scalar PHY chain instead of\n"
        "                the batched SoA engine (CI A/Bs the two paths for\n"
        "                byte-identical output)",
        [&no_phy_batch](const char*) { no_phy_batch = true; },
        /*takes_value=*/false}});
  if (no_phy_batch) set_phy_batch_enabled(false);
  const int trials = args.trials > 0 ? args.trials : kDefaultTrialsPerPoint;

  runner::SweepGrid<int> grid;  // points: station count
  grid.base_seed = args.seed;
  grid.trials = static_cast<std::size_t>(trials);
  grid.points =
      stas_csv.empty() ? std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128, 256}
                       : parse_stas(stas_csv);

  fabric::FabricConfig fab_config = bench::fabric_config(args);
  if (!stas_csv.empty()) {
    // Workers must rebuild the identical grid.
    fab_config.passthrough_args.push_back("--stas");
    fab_config.passthrough_args.push_back(stas_csv);
  }
  if (no_phy_batch) {
    // Workers must run the same engine.
    fab_config.passthrough_args.push_back("--no-phy-batch");
  }
  fabric::Fabric fab(std::move(fab_config));
  if (!fab.worker_mode()) {
    bench::print_header("Network", "multi-STA CoS scenarios (src/net/)");
  }

  const auto outcome = fab.run(
      "net_scenarios", grid, {.threads = args.threads, .chunk = 1},
      [](const int& stas, const runner::TrialContext& ctx) {
        return net::run_scenario(scenario_for(stas), ctx.seed);
      },
      [](const net::NetResult& r) { return r.to_json(); },
      [](const runner::Json& j) { return net::NetResult::from_json(j); });
  if (fab.worker_mode()) return fab.finish_worker();

  runner::SweepReport report;
  report.bench = "net_scenarios";
  report.title = "Network";
  report.description =
      "aggregate throughput, control goodput, overhead and fairness vs "
      "station count";
  runner::Json stas_axis = runner::Json::array();
  for (const int n : grid.points) {
    stas_axis.push_back(static_cast<std::int64_t>(n));
  }
  report.grid.set("stations", std::move(stas_axis));
  report.grid.set("trials_per_point", trials);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.grid.set("scenario", base_scenario().to_json());
  report.columns = {{"stas", 6, 0},       {"thpt_mbps", 10, 2},
                    {"ctrl_kbps", 10, 2}, {"overhead", 9, 3},
                    {"fairness", 9, 3},   {"coll_rate", 10, 3},
                    {"mpdus", 8, 0},      {"hol_p50", 8, 1},
                    {"hol_p95", 8, 1},    {"hol_p99", 8, 1}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const net::NetResult& r = outcome.point_results[i];
    std::size_t mpdus = 0;
    for (const net::StaStats& s : r.stations) mpdus += s.mpdus_delivered;
    const net::SlotHist hol = merged_hol(r);
    report.add_row({static_cast<std::int64_t>(grid.points[i]),
                    r.aggregate_throughput_mbps(), r.control_goodput_kbps(),
                    r.airtime_overhead(), r.jain_fairness(),
                    r.collision_rate(),
                    static_cast<std::int64_t>(mpdus), hol.quantile(0.50),
                    hol.quantile(0.95), hol.quantile(0.99)});
  }
  report.notes = {
      "",
      "Reading: control goodput scales with the medium's data airtime —",
      "every won frame carries its station's control chunk for free, so",
      "the overhead column (idle + collisions + ACKs) never grows a",
      "control-frame component. Fairness decays as far stations at low",
      "SNR lose airtime share to collisions and slow rates. hol_p* are",
      "head-of-line wait percentiles in 9 us slots, merged over stations",
      "(per-station distributions live in the .metrics.json sidecar)."};

  runner::TableSink table;
  table.write(report);
  if (args.json) {
    runner::JsonSink(args.json_path).write(report);
    if (fab.fabric_mode()) {
      // Replace the supervisor-only sidecar JsonSink just wrote with the
      // merge of every worker's shard metrics plus our own snapshot, and
      // drop the supervisor's shard-lifecycle telemetry alongside.
      fab.write_sidecars(args.json_path);
    }
  }

  // Machine-readable perf/behavior baseline for tools/bench_compare.
  // Only seed-deterministic quantities (no wall-clock), so the CI gate
  // can use a tight tolerance: goodput as items/sec (bits per simulated
  // second of medium time) per station count.
  runner::Json bench_json = runner::Json::object();
  bench_json.set("bench", "net_scenarios");
  bench_json.set("schema_version", 1);
  runner::Json stages = runner::Json::array();
  runner::Json net_points = runner::Json::array();
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const net::NetResult& r = outcome.point_results[i];
    const std::string suffix = "/stas=" + std::to_string(grid.points[i]);
    runner::Json thpt = runner::Json::object();
    thpt.set("name", "NET/goodput" + suffix);
    thpt.set("items_per_second", r.aggregate_throughput_mbps() * 1e6);
    stages.push_back(std::move(thpt));
    runner::Json ctrl = runner::Json::object();
    ctrl.set("name", "NET/ctrl_goodput" + suffix);
    ctrl.set("items_per_second", r.control_goodput_kbps() * 1e3);
    stages.push_back(std::move(ctrl));

    std::size_t mpdus = 0;
    for (const net::StaStats& s : r.stations) mpdus += s.mpdus_delivered;
    runner::Json point = runner::Json::object();
    point.set("stas", static_cast<std::int64_t>(grid.points[i]));
    point.set("thpt_mbps", r.aggregate_throughput_mbps());
    point.set("ctrl_kbps", r.control_goodput_kbps());
    point.set("overhead", r.airtime_overhead());
    point.set("fairness", r.jain_fairness());
    point.set("coll_rate", r.collision_rate());
    point.set("mpdus", static_cast<std::int64_t>(mpdus));
    const net::SlotHist hol = merged_hol(r);
    const net::SlotHist gap = merged_gap(r);
    point.set("hol_wait_slots_p50", hol.quantile(0.50));
    point.set("hol_wait_slots_p95", hol.quantile(0.95));
    point.set("hol_wait_slots_p99", hol.quantile(0.99));
    point.set("inter_tx_gap_slots_p50", gap.quantile(0.50));
    point.set("inter_tx_gap_slots_p95", gap.quantile(0.95));
    net_points.push_back(std::move(point));
  }
  bench_json.set("stages", std::move(stages));
  bench_json.set("net_points", std::move(net_points));
  runner::write_json_file("results/BENCH_net.json", bench_json);

  bench::finish_observability(args);
  return 0;
}
