// Network-scale CoS: one AP, N contending stations, every data frame
// carrying a free CoS control message. Sweeps the station count 1 -> 64
// and reports what the network gets out of the shared medium: aggregate
// data throughput, CoS control goodput (the bits the paper gets "for
// free"), the airtime DCF burns on overhead, and Jain fairness across
// stations.
//
// Runner-based: each Monte-Carlo trial runs one full scenario seed, and
// trials fan out across the thread pool with (base_seed, point, trial)
// derived seeds — results are bit-identical at any --threads value.
#include <cstdio>

#include "bench_util.h"
#include "net/scenario.h"
#include "runner/sinks.h"
#include "runner/sweep.h"

using namespace silence;

namespace {

constexpr int kDefaultTrialsPerPoint = 4;

net::Scenario base_scenario() {
  net::Scenario scenario;
  scenario.duration_us = 20e3;
  return scenario;
}

net::Scenario scenario_for(int num_stations) {
  net::Scenario scenario = base_scenario();
  scenario.num_stations = num_stations;
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args =
      bench::parse_bench_args(argc, argv, "net_scenarios");
  const int trials = args.trials > 0 ? args.trials : kDefaultTrialsPerPoint;

  runner::SweepGrid<int> grid;  // points: station count
  grid.base_seed = args.seed;
  grid.trials = static_cast<std::size_t>(trials);
  grid.points = {1, 2, 4, 8, 16, 32, 64};

  bench::print_header("Network", "multi-STA CoS scenarios (src/net/)");

  const auto outcome = runner::run_sweep(
      grid, {.threads = args.threads, .chunk = 1},
      [](const int& stas, const runner::TrialContext& ctx) {
        return net::run_scenario(scenario_for(stas), ctx.seed);
      });

  runner::SweepReport report;
  report.bench = "net_scenarios";
  report.title = "Network";
  report.description =
      "aggregate throughput, control goodput, overhead and fairness vs "
      "station count";
  runner::Json stas_axis = runner::Json::array();
  for (const int n : grid.points) {
    stas_axis.push_back(static_cast<std::int64_t>(n));
  }
  report.grid.set("stations", std::move(stas_axis));
  report.grid.set("trials_per_point", trials);
  report.grid.set("base_seed", static_cast<std::int64_t>(grid.base_seed));
  report.grid.set("scenario", base_scenario().to_json());
  report.columns = {{"stas", 6, 0},       {"thpt_mbps", 10, 2},
                    {"ctrl_kbps", 10, 2}, {"overhead", 9, 3},
                    {"fairness", 9, 3},   {"coll_rate", 10, 3},
                    {"mpdus", 8, 0}};
  report.threads = outcome.threads;
  report.wall_seconds = outcome.wall_seconds;
  report.trials_run = outcome.trials_run;
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const net::NetResult& r = outcome.point_results[i];
    std::size_t mpdus = 0;
    for (const net::StaStats& s : r.stations) mpdus += s.mpdus_delivered;
    report.add_row({static_cast<std::int64_t>(grid.points[i]),
                    r.aggregate_throughput_mbps(), r.control_goodput_kbps(),
                    r.airtime_overhead(), r.jain_fairness(),
                    r.collision_rate(),
                    static_cast<std::int64_t>(mpdus)});
  }
  report.notes = {
      "",
      "Reading: control goodput scales with the medium's data airtime —",
      "every won frame carries its station's control chunk for free, so",
      "the overhead column (idle + collisions + ACKs) never grows a",
      "control-frame component. Fairness decays as far stations at low",
      "SNR lose airtime share to collisions and slow rates."};

  runner::TableSink table;
  table.write(report);
  if (args.json) {
    runner::JsonSink(args.json_path).write(report);
  }
  bench::finish_observability(args);
  return 0;
}
