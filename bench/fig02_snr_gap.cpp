// Reproduces paper Fig. 2: the SNR gap between the minimum required SNR
// of the adapted data rate and the actual channel SNR, as a function of
// the NIC-measured SNR.
//
// Receiver positions are modelled as multipath realizations (channel
// seeds); for each target measured SNR the noise level is pinned so the
// NIC would report exactly that value, then the rate adaptation picks an
// MCS and we read off its threshold and the sounder-style actual SNR.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "channel/fading.h"
#include "sim/stats.h"

using namespace silence;

int main() {
  bench::print_header("Fig. 2",
                      "SNR gap: measured vs minimum-required vs actual SNR");
  std::printf("%12s %14s %12s %10s  %s\n", "measured_dB", "min_required_dB",
              "actual_dB", "gap_dB", "rate");

  const int positions = 40;
  for (double measured = 5.0; measured <= 25.0; measured += 1.0) {
    std::vector<double> actuals;
    for (int seed = 1; seed <= positions; ++seed) {
      MultipathProfile profile;
      FadingChannel channel(profile, static_cast<std::uint64_t>(seed));
      const double nv = noise_var_for_measured_snr(channel, measured);
      actuals.push_back(channel.actual_snr_db(nv));
    }
    const Mcs& mcs = select_mcs_by_snr(measured);
    const double actual = mean(actuals);
    std::printf("%12.1f %14.1f %12.1f %10.1f  %d Mbps (%s %s)\n", measured,
                mcs.min_required_snr_db, actual,
                actual - mcs.min_required_snr_db, mcs.data_rate_mbps,
                std::string(to_string(mcs.modulation)).c_str(),
                std::string(to_string(mcs.code_rate)).c_str());
  }
  std::printf(
      "\nPaper anchor: at measured SNR 15 dB the rate is 24 Mbps, the\n"
      "minimum required SNR is 12 dB and the actual SNR is ~16.7 dB\n"
      "(gap ~4.7 dB). The gap must stay positive across the sweep and\n"
      "shrink toward each rate-region boundary.\n");
  return 0;
}
