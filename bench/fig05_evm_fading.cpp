// Reproduces paper Fig. 5: per-subcarrier EVM of a 20 MHz 802.11a channel
// under frequency-selective fading at three receiver positions (A, B, C).
//
// Positions are multipath realizations; EVM is computed exactly as the
// receiver does it — post-CRC, by re-mapping decoded bits — using a fixed
// known packet, matching the paper's measurement method.
#include <cstdio>

#include "bench_util.h"
#include "channel/fading.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "core/cos_link.h"
#include "sim/stats.h"

using namespace silence;

namespace {

SubcarrierEvm measure_position(std::uint64_t position_seed) {
  const Mcs& mcs = mcs_for_rate(24);
  // Office links with a dominant line-of-sight component: frequency
  // selectivity is pronounced but the notches stay moderate, matching
  // the 0..20% EVM range of the paper's Fig. 5.
  MultipathProfile profile;
  profile.rician_k_linear = 10.0;
  profile.decay_taps = 1.5;
  FadingChannel channel(profile, position_seed);
  const double nv = noise_var_for_measured_snr(channel, 22.0);

  // Accumulate EVM over several packets of the fixed test payload.
  std::array<double, kNumDataSubcarriers> sum{};
  int count = 0;
  for (int p = 0; p < 20; ++p) {
    Rng rng(1234);  // fixed packet known to both ends
    Bytes psdu = rng.bytes(1020);
    append_fcs(psdu);
    Rng noise(static_cast<std::uint64_t>(p) * 31 + position_seed);
    const TxFrame frame = build_frame(psdu, mcs);
    const CxVec received =
        channel.transmit(frame_to_samples(frame), nv, noise);
    const FrontEndResult fe = receiver_front_end(received);
    if (!fe.signal) continue;
    const DecodeResult decode =
        decode_data_symbols(fe, mcs, static_cast<int>(psdu.size()));
    if (!decode.crc_ok) continue;
    const auto ideal = reconstruct_ideal_grid(decode, mcs);
    const auto evm =
        per_subcarrier_evm(decode.eq_data, ideal, mcs.modulation);
    for (int j = 0; j < kNumDataSubcarriers; ++j) {
      sum[static_cast<std::size_t>(j)] += evm[static_cast<std::size_t>(j)];
    }
    ++count;
  }
  SubcarrierEvm result{};
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    result[static_cast<std::size_t>(j)] =
        count ? sum[static_cast<std::size_t>(j)] / count : 0.0;
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 5", "per-subcarrier EVM(%) at three positions (A, B, C)");

  const SubcarrierEvm a = measure_position(101);
  const SubcarrierEvm b = measure_position(202);
  const SubcarrierEvm c = measure_position(303);

  std::printf("%10s %10s %10s %10s\n", "subcarrier", "pos_A", "pos_B",
              "pos_C");
  double max_a = 0.0, min_a = 1e9;
  for (int j = 0; j < kNumDataSubcarriers; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    std::printf("%10d %10.2f %10.2f %10.2f\n", j + 1, 100.0 * a[idx],
                100.0 * b[idx], 100.0 * c[idx]);
    max_a = std::max(max_a, 100.0 * a[idx]);
    min_a = std::min(min_a, 100.0 * a[idx]);
  }
  std::printf(
      "\nposition A EVM spread: min %.2f%%, max %.2f%%, spread %.2f%%\n",
      min_a, max_a, max_a - min_a);
  std::printf(
      "Paper shape: EVM differs strongly across subcarriers (up to ~13%%\n"
      "for a single link) and the three positions show distinct fading\n"
      "patterns.\n");
  return 0;
}
